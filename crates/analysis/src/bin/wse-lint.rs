//! `wse-lint` — the stencil lint driver.
//!
//! ```text
//! wse-lint FILE.f90 ...        lint Fortran stencil sources
//! wse-lint --builtin           lint the five paper benchmarks
//! wse-lint --explain E101      explain a diagnostic code
//! wse-lint --codes             list every registered code
//! ```
//!
//! For each program the driver runs the AST lints; when they produce no
//! errors it also compiles the program, links it, and runs the static
//! race detector over the optimized instruction stream, so one command
//! covers both ends of the pipeline.  Exit status: 0 clean (warnings
//! allowed), 1 when any error-severity finding or compile failure is
//! reported, 2 on usage errors.

use std::process::ExitCode;

use wse_analysis::{has_errors, Analyzer, Finding};
use wse_ir::diagnostics::{render_explanation, REGISTRY};
use wse_stencil::benchmarks::Benchmark;
use wse_stencil::fortran::parse_fortran;
use wse_stencil::{Compiler, StencilProgram};

fn usage() -> ExitCode {
    eprintln!(
        "usage: wse-lint [--explain CODE] [--codes] [--builtin] [FILE.f90 ...]\n\
         \n\
         Lints stencil programs and checks their linked instruction streams\n\
         for races.  Codes are stable; `--explain <code>` documents one."
    );
    ExitCode::from(2)
}

/// Lints one program end to end; returns whether an error was found.
fn check_program(label: &str, program: &StencilProgram) -> bool {
    let analyzer = Analyzer::new();
    let mut findings: Vec<Finding> = analyzer.lint(program);
    let lint_errors = has_errors(&findings);

    // The stream-level checks need a compiled artifact; skip them when
    // the AST already fails (compilation would reject the same shapes).
    if !lint_errors {
        match Compiler::new().compile(program) {
            Ok(artifact) => match wse_sim::link_program(artifact.loaded_program()) {
                Ok(linked) => {
                    findings.extend(analyzer.check_stream(&linked));
                    let counts = analyzer.dependence_graph(&linked).counts();
                    println!(
                        "{label}: dependence DAG {} nodes, {} edges \
                             (raw {}, war {}, waw {}, snapshot {}, halo {})",
                        counts.nodes,
                        counts.edges(),
                        counts.raw,
                        counts.war,
                        counts.waw,
                        counts.snapshot,
                        counts.halo
                    );
                }
                Err(e) => {
                    let code = e.code().unwrap_or("link-layout");
                    println!("{label}: error[{code}] link failed: {}", e.message);
                    return true;
                }
            },
            Err(e) => {
                println!(
                    "{label}: error[{}] compile failed in {}: {}",
                    e.code().unwrap_or("internal-panic"),
                    e.stage(),
                    e.message()
                );
                return true;
            }
        }
    }

    if findings.is_empty() {
        println!("{label}: clean");
    }
    for finding in &findings {
        println!("{label}: {finding}");
    }
    has_errors(&findings)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        return usage();
    }

    let mut files: Vec<String> = Vec::new();
    let mut builtin = false;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--explain" => {
                let Some(code) = iter.next() else {
                    eprintln!("--explain requires a code");
                    return usage();
                };
                return match render_explanation(code) {
                    Some(text) => {
                        print!("{text}");
                        ExitCode::SUCCESS
                    }
                    None => {
                        eprintln!("unknown code {code:?}; `wse-lint --codes` lists all");
                        ExitCode::from(2)
                    }
                };
            }
            "--codes" => {
                for d in REGISTRY {
                    println!("{:<18} {:<8} {}", d.code, d.severity.to_string(), d.summary);
                }
                return ExitCode::SUCCESS;
            }
            "--builtin" => builtin = true,
            "--help" | "-h" => return usage(),
            flag if flag.starts_with('-') => {
                eprintln!("unknown flag {flag:?}");
                return usage();
            }
            file => files.push(file.to_string()),
        }
    }

    let mut failed = false;
    if builtin {
        for bench in Benchmark::ALL {
            failed |= check_program(bench.name(), &bench.tiny_program());
        }
    }
    for file in &files {
        let source = match std::fs::read_to_string(file) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("{file}: cannot read: {e}");
                failed = true;
                continue;
            }
        };
        let name = file.rsplit('/').next().unwrap_or(file).trim_end_matches(".f90");
        match parse_fortran(name, &source) {
            Ok(program) => failed |= check_program(file, &program),
            Err(e) => {
                eprintln!("{file}: parse error: {e}");
                failed = true;
            }
        }
    }
    if !builtin && files.is_empty() {
        return usage();
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
