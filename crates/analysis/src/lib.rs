//! # wse-analysis — static analysis over both ends of the pipeline
//!
//! The compiler's correctness story so far was dynamic: the conformance
//! harness executes generated programs and compares bits.  This crate adds
//! the static half, working on the two stable program representations:
//!
//! * the front-end [`StencilProgram`] AST, before any lowering — the
//!   [`lint`] pass walks equations and reports the `W0xx`/`E00x` codes
//!   (unused fields, dead stores, self-aliasing applies, out-of-bounds
//!   offsets, unsupported halo radii, degree caps);
//! * the linked instruction stream ([`LinkedProgram`]), after every
//!   optimizer rewrite — [`dag`] assembles def-use chains and
//!   buffer-range interval sets into a dependence DAG (RAW/WAR/WAW plus
//!   snapshot and halo edges), and [`race`] re-derives the cross-PE
//!   safety invariants the optimizer relies on (`E101`/`E102`/`W101`)
//!   without executing anything.
//!
//! All codes come from the single registry in [`wse_ir::diagnostics`];
//! the `wse-lint` binary fronts both passes and renders
//! `--explain <code>` from the same table.  The third static consumer —
//! the translation validator that re-checks every link-time rewrite —
//! lives with the optimizer itself in `wse_sim::validate`; this crate's
//! race detector covers the schedule-dependent hazards that validator
//! deliberately models away.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod dag;
pub mod ir;
pub mod lint;
pub mod race;

use std::fmt;

use wse_frontends::StencilProgram;
use wse_sim::LinkedProgram;

pub use dag::{DepEdge, DepGraph, DepNode, EdgeKind, NodeKind};
pub use wse_ir::Severity;

/// One analyzer finding, tagged with a registered diagnostic code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Stable code from the [`wse_ir::diagnostics`] registry.
    pub code: &'static str,
    /// Severity (always consistent with the registry entry).
    pub severity: Severity,
    /// Human-readable description of this occurrence.
    pub message: String,
    /// Where the finding anchors (equation index, kernel/block/instr).
    pub location: String,
}

impl Finding {
    /// Builds a finding, asserting the code is registered and pulling its
    /// severity from the registry so the two can never disagree.
    pub fn new(code: &'static str, location: String, message: String) -> Self {
        let info = wse_ir::lookup_diagnostic(code)
            .unwrap_or_else(|| panic!("finding uses unregistered code {code:?}"));
        Finding { code, severity: info.severity, message, location }
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}] {}: {}", self.severity, self.code, self.location, self.message)
    }
}

/// True when any finding in the slice is an [`Severity::Error`].
pub fn has_errors(findings: &[Finding]) -> bool {
    findings.iter().any(|f| f.severity == Severity::Error)
}

/// The static analyzer: one entry point per representation.
///
/// Stateless today; constructed explicitly so future options (lint
/// allow-lists, DAG depth limits) have a home that does not break
/// call sites.
#[derive(Debug, Clone, Copy, Default)]
pub struct Analyzer;

impl Analyzer {
    /// Creates an analyzer with default settings.
    pub fn new() -> Self {
        Analyzer
    }

    /// Lints a front-end stencil program (codes `W001`–`W004`,
    /// `E001`–`E003`).
    pub fn lint(&self, program: &StencilProgram) -> Vec<Finding> {
        lint::lint_program(program)
    }

    /// Statically checks a linked instruction stream for cross-PE races
    /// and broken optimizer invariants (codes `E101`, `E102`, `W101`).
    pub fn check_stream(&self, linked: &LinkedProgram) -> Vec<Finding> {
        race::check_stream(linked)
    }

    /// Builds the dependence DAG of a linked stream (every PE executes
    /// the same stream, so one graph describes the whole grid).
    pub fn dependence_graph(&self, linked: &LinkedProgram) -> DepGraph {
        DepGraph::build(linked)
    }

    /// Summarizes a stencil IR module through the dialect effect table
    /// and SSA def-use chains.
    pub fn ir_summary(&self, ctx: &wse_ir::Context, root: wse_ir::OpId) -> ir::IrSummary {
        ir::summarize(ctx, root)
    }
}
