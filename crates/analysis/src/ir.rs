//! Def-use analysis over stencil IR, driven by the dialect effect table.
//!
//! The other half of the analyzer works on the linked instruction stream;
//! this half works on the SSA IR the front-ends emit, before lowering.
//! It walks a module, classifies every operation through
//! [`wse_dialects::effects::op_effects`] (so per-op knowledge lives with
//! the dialects, not here), and follows SSA def-use chains to find pure
//! operations whose results are never used — the IR-level analogue of the
//! linked-stream dead-write elision.

use wse_dialects::effects::{op_effects, OpEffects};
use wse_ir::{Context, OpId};

/// Summary of one module's memory behaviour and def-use structure.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IrSummary {
    /// Total operations walked.
    pub ops: usize,
    /// Operations with no memory effects.
    pub pure_ops: usize,
    /// Operations that read field/temp memory.
    pub memory_reads: usize,
    /// Operations that write field/temp memory.
    pub memory_writes: usize,
    /// Operations that move data between PEs.
    pub communications: usize,
    /// Names of ops the effect table has no model for (analysis must be
    /// conservative around these).
    pub unknown_ops: Vec<String>,
    /// Pure operations none of whose results have any use: dead by
    /// def-use chains alone, safe to erase.
    pub dead_pure_ops: usize,
}

/// Walks `root` and summarizes it.  `Context::walk` visits nested regions,
/// so passing a module covers every function and apply body inside.
pub fn summarize(ctx: &Context, root: OpId) -> IrSummary {
    let mut summary = IrSummary::default();
    for op in ctx.walk(root) {
        let name = ctx.op_name(op).to_string();
        let effects = op_effects(&name);
        summary.ops += 1;
        if effects.is_pure() {
            summary.pure_ops += 1;
            let results = ctx.results(op);
            if !results.is_empty() && results.iter().all(|&v| ctx.uses_of(v).is_empty()) {
                summary.dead_pure_ops += 1;
            }
        }
        if effects.reads {
            summary.memory_reads += 1;
        }
        if effects.writes {
            summary.memory_writes += 1;
        }
        if effects.communicates {
            summary.communications += 1;
        }
        if effects == OpEffects::UNKNOWN {
            summary.unknown_ops.push(name);
        }
    }
    summary
}
