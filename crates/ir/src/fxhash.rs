//! A minimal in-tree FxHash implementation.
//!
//! The storage uniquer in [`crate::Context`] interns every [`crate::Type`]
//! and [`crate::Attribute`] through a hash map; the default SipHash is
//! needlessly slow for that hot path (interning happens on every value
//! creation).  This is the well-known Fx algorithm used by rustc
//! (`rustc-hash`): a simple multiply-xor mix, not DoS-resistant, which is
//! fine for compiler-internal tables keyed by trusted data.  Vendored
//! in-tree because the workspace builds fully offline.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative constant from the Fx algorithm (64-bit).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

/// The Fx hasher: multiply-xor mixing, word at a time.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add_to_hash(u64::from(v));
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add_to_hash(u64::from(v));
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add_to_hash(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add_to_hash(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// A `HashMap` keyed through [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// A `HashSet` keyed through [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildHasherDefault<FxHasher>>;

/// Hashes one value with [`FxHasher`] (used for the stable IR fingerprint).
pub fn fx_hash_one<T: std::hash::Hash>(value: &T) -> u64 {
    let mut hasher = FxHasher::default();
    value.hash(&mut hasher);
    hasher.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_hashers() {
        assert_eq!(fx_hash_one(&"stencil.apply"), fx_hash_one(&"stencil.apply"));
        assert_ne!(fx_hash_one(&"stencil.apply"), fx_hash_one(&"stencil.store"));
        let mut map: FxHashMap<String, u32> = FxHashMap::default();
        map.insert("a".into(), 1);
        map.insert("b".into(), 2);
        assert_eq!(map.get("a"), Some(&1));
    }

    #[test]
    fn all_write_widths_mix() {
        let mut h = FxHasher::default();
        h.write_u8(1);
        h.write_u16(2);
        h.write_u32(3);
        h.write_u64(4);
        h.write_usize(5);
        h.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        assert_ne!(h.finish(), 0);
    }
}
