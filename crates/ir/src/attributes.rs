//! Attributes: compile-time constant data attached to operations.
//!
//! Attributes mirror MLIR's attribute system: integers, floats, strings,
//! booleans, arrays, dictionaries, dense element constants, symbol
//! references, types-as-attributes and dialect-specific attributes.
//! Floats are stored by their bit pattern so attributes implement `Eq`,
//! `Ord` and `Hash` and can be used as map keys and interned.

use std::collections::BTreeMap;
use std::fmt;

use crate::types::Type;

/// A float constant stored as its bit pattern (so the containing
/// [`Attribute`] can implement `Eq`/`Hash`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FloatBits(u64);

impl FloatBits {
    /// Creates a float attribute payload from an `f64` value.
    pub fn new(value: f64) -> Self {
        FloatBits(value.to_bits())
    }

    /// The stored value.
    pub fn value(self) -> f64 {
        f64::from_bits(self.0)
    }
}

/// A dialect-defined attribute (analogous to [`crate::DialectType`]).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DialectAttr {
    /// Owning dialect, e.g. `"dmp"`.
    pub dialect: String,
    /// Attribute name within the dialect, e.g. `"exchange"`.
    pub name: String,
    /// Ordered attribute parameters.
    pub params: Vec<Attribute>,
}

impl DialectAttr {
    /// Creates a new dialect attribute.
    pub fn new(
        dialect: impl Into<String>,
        name: impl Into<String>,
        params: Vec<Attribute>,
    ) -> Self {
        Self { dialect: dialect.into(), name: name.into(), params }
    }
}

/// An attribute value.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Attribute {
    /// A unit (presence-only) attribute.
    Unit,
    /// A boolean attribute.
    Bool(bool),
    /// An integer attribute with an associated type.
    Int(i64, Type),
    /// A float attribute with an associated type.
    Float(FloatBits, Type),
    /// A string attribute.
    Str(String),
    /// An ordered array of attributes.
    Array(Vec<Attribute>),
    /// A dictionary of named attributes.
    Dict(BTreeMap<String, Attribute>),
    /// A type used as an attribute (e.g. `function_type`).
    Type(Type),
    /// A reference to a symbol (e.g. a function name), printed `@name`.
    SymbolRef(String),
    /// A dense constant where all elements share one value
    /// (`dense<0.12345> : tensor<510xf32>`).
    DenseSplat(FloatBits, Type),
    /// A dense constant with explicit f32 elements.
    DenseF32(Vec<FloatBits>, Type),
    /// An array of integers, used for shapes, offsets and bounds
    /// (printed `[a, b, c]` with an `: index_array` marker when parsed).
    IndexArray(Vec<i64>),
    /// A dialect-defined attribute.
    Dialect(DialectAttr),
}

impl Attribute {
    /// Integer attribute of type `i64`.
    pub fn int(value: i64) -> Attribute {
        Attribute::Int(value, Type::int(64))
    }

    /// Integer attribute with an explicit type.
    pub fn int_typed(value: i64, ty: Type) -> Attribute {
        Attribute::Int(value, ty)
    }

    /// Index-typed integer attribute.
    pub fn index(value: i64) -> Attribute {
        Attribute::Int(value, Type::Index)
    }

    /// `f32` float attribute.
    pub fn f32(value: f32) -> Attribute {
        // `f64::from` is not guaranteed to preserve the NaN sign bit (and
        // stopped doing so on recent toolchains); the IR semantics keep
        // `is_nan` plus the sign, so restore the sign explicitly.
        let mut wide = f64::from(value);
        if value.is_nan() {
            wide = f64::NAN.copysign(if value.is_sign_negative() { -1.0 } else { 1.0 });
        }
        Attribute::Float(FloatBits::new(wide), Type::f32())
    }

    /// `f64` float attribute.
    pub fn f64(value: f64) -> Attribute {
        Attribute::Float(FloatBits::new(value), Type::f64())
    }

    /// String attribute.
    pub fn str(value: impl Into<String>) -> Attribute {
        Attribute::Str(value.into())
    }

    /// Boolean attribute.
    pub fn bool(value: bool) -> Attribute {
        Attribute::Bool(value)
    }

    /// Array attribute.
    pub fn array(values: Vec<Attribute>) -> Attribute {
        Attribute::Array(values)
    }

    /// Dense splat attribute (`dense<v> : ty`).
    pub fn dense_splat_f32(value: f32, ty: Type) -> Attribute {
        Attribute::DenseSplat(FloatBits::new(f64::from(value)), ty)
    }

    /// Dialect attribute helper.
    pub fn dialect(dialect: &str, name: &str, params: Vec<Attribute>) -> Attribute {
        Attribute::Dialect(DialectAttr::new(dialect, name, params))
    }

    /// Returns the integer payload if this is an integer attribute.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Attribute::Int(v, _) => Some(*v),
            Attribute::Bool(b) => Some(i64::from(*b)),
            _ => None,
        }
    }

    /// Returns the float payload if this is a float or splat attribute.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Attribute::Float(bits, _) | Attribute::DenseSplat(bits, _) => Some(bits.value()),
            _ => None,
        }
    }

    /// Returns the string payload if this is a string or symbol attribute.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Attribute::Str(s) | Attribute::SymbolRef(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the boolean payload if this is a boolean attribute.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Attribute::Bool(b) => Some(*b),
            Attribute::Int(v, _) => Some(*v != 0),
            _ => None,
        }
    }

    /// Returns the array elements if this is an array attribute.
    pub fn as_array(&self) -> Option<&[Attribute]> {
        match self {
            Attribute::Array(v) => Some(v),
            _ => None,
        }
    }

    /// Returns the integer elements if this is an index-array attribute.
    pub fn as_index_array(&self) -> Option<&[i64]> {
        match self {
            Attribute::IndexArray(v) => Some(v),
            _ => None,
        }
    }

    /// Returns the type payload if this is a type attribute.
    pub fn as_type(&self) -> Option<&Type> {
        match self {
            Attribute::Type(t) => Some(t),
            _ => None,
        }
    }

    /// Returns the dialect attribute payload if present.
    pub fn as_dialect(&self) -> Option<&DialectAttr> {
        match self {
            Attribute::Dialect(d) => Some(d),
            _ => None,
        }
    }

    /// Recursively rewrites every [`Type`] embedded in this attribute.
    pub fn map_types(&self, f: &impl Fn(&Type) -> Type) -> Attribute {
        match self {
            Attribute::Int(v, t) => Attribute::Int(*v, f(t)),
            Attribute::Float(v, t) => Attribute::Float(*v, f(t)),
            Attribute::Type(t) => Attribute::Type(f(t)),
            Attribute::DenseSplat(v, t) => Attribute::DenseSplat(*v, f(t)),
            Attribute::DenseF32(v, t) => Attribute::DenseF32(v.clone(), f(t)),
            Attribute::Array(items) => {
                Attribute::Array(items.iter().map(|a| a.map_types(f)).collect())
            }
            Attribute::Dict(map) => {
                Attribute::Dict(map.iter().map(|(k, v)| (k.clone(), v.map_types(f))).collect())
            }
            Attribute::Dialect(d) => Attribute::Dialect(DialectAttr::new(
                d.dialect.clone(),
                d.name.clone(),
                d.params.iter().map(|a| a.map_types(f)).collect(),
            )),
            other => other.clone(),
        }
    }
}

/// Formats a float the way MLIR does: always with a decimal point or
/// exponent so it round-trips as a float.
fn format_float(v: f64) -> String {
    // Non-finite values print as sign-carrying keywords the parser
    // accepts back (`nan`, `-nan`, `inf`, `-inf`).  NaN payload bits are
    // not preserved across the round trip — only `is_nan` and the sign,
    // which is all the IR semantics depend on.
    if v.is_nan() {
        return if v.is_sign_negative() { "-nan".into() } else { "nan".into() };
    }
    if v.is_infinite() {
        return if v < 0.0 { "-inf".into() } else { "inf".into() };
    }
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.6e}")
    } else {
        format!("{v:e}")
    }
}

impl fmt::Display for Attribute {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Attribute::Unit => write!(f, "unit"),
            Attribute::Bool(b) => write!(f, "{b}"),
            Attribute::Int(v, t) => write!(f, "{v} : {t}"),
            Attribute::Float(bits, t) => write!(f, "{} : {t}", format_float(bits.value())),
            Attribute::Str(s) => write!(f, "{s:?}"),
            Attribute::Array(items) => {
                write!(f, "[")?;
                for (i, a) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, "]")
            }
            Attribute::Dict(map) => {
                write!(f, "{{")?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{k} = {v}")?;
                }
                write!(f, "}}")
            }
            Attribute::Type(t) => write!(f, "{t}"),
            Attribute::SymbolRef(s) => write!(f, "@{s}"),
            Attribute::DenseSplat(bits, t) => {
                write!(f, "dense<{}> : {t}", format_float(bits.value()))
            }
            Attribute::DenseF32(items, t) => {
                write!(f, "dense<[")?;
                for (i, b) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{}", format_float(b.value()))?;
                }
                write!(f, "]> : {t}")
            }
            Attribute::IndexArray(items) => {
                write!(f, "array<")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, ">")
            }
            Attribute::Dialect(d) => {
                write!(f, "#{}.{}", d.dialect, d.name)?;
                if !d.params.is_empty() {
                    write!(f, "<")?;
                    for (i, p) in d.params.iter().enumerate() {
                        if i > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{p}")?;
                    }
                    write!(f, ">")?;
                }
                Ok(())
            }
        }
    }
}

/// An ordered collection of named attributes attached to an operation.
pub type AttrMap = BTreeMap<String, Attribute>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn float_bits_roundtrip() {
        let b = FloatBits::new(0.12345);
        assert_eq!(b.value(), 0.12345);
        assert_eq!(FloatBits::new(0.12345), b);
    }

    #[test]
    fn accessors() {
        assert_eq!(Attribute::int(7).as_int(), Some(7));
        assert_eq!(Attribute::f32(1.5).as_float(), Some(1.5));
        assert_eq!(Attribute::str("hi").as_str(), Some("hi"));
        assert_eq!(Attribute::bool(true).as_bool(), Some(true));
        assert_eq!(Attribute::IndexArray(vec![1, 0, 0]).as_index_array(), Some(&[1, 0, 0][..]));
        assert_eq!(Attribute::Type(Type::f32()).as_type(), Some(&Type::f32()));
        let arr = Attribute::array(vec![Attribute::int(1), Attribute::int(2)]);
        assert_eq!(arr.as_array().unwrap().len(), 2);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Attribute::int(42).to_string(), "42 : i64");
        assert_eq!(Attribute::str("x").to_string(), "\"x\"");
        assert_eq!(Attribute::SymbolRef("main".into()).to_string(), "@main");
        assert_eq!(Attribute::IndexArray(vec![1, -1]).to_string(), "array<1, -1>");
        assert_eq!(Attribute::Unit.to_string(), "unit");
        assert_eq!(Attribute::bool(false).to_string(), "false");
        let d = Attribute::dialect("dmp", "topo", vec![Attribute::int(254)]);
        assert_eq!(d.to_string(), "#dmp.topo<254 : i64>");
        let splat = Attribute::dense_splat_f32(0.5, Type::tensor(vec![4], Type::f32()));
        assert_eq!(splat.to_string(), "dense<5e-1> : tensor<4xf32>");
    }

    #[test]
    fn dict_display_is_sorted() {
        let mut m = BTreeMap::new();
        m.insert("b".to_string(), Attribute::int(2));
        m.insert("a".to_string(), Attribute::int(1));
        assert_eq!(Attribute::Dict(m).to_string(), "{a = 1 : i64, b = 2 : i64}");
    }

    #[test]
    fn map_types_rewrites_nested() {
        let a = Attribute::array(vec![Attribute::Type(Type::tensor(vec![4], Type::f32()))]);
        let mapped = a.map_types(&|t| t.tensor_to_memref());
        assert_eq!(
            mapped.as_array().unwrap()[0],
            Attribute::Type(Type::memref(vec![4], Type::f32()))
        );
    }
}
