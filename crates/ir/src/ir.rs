//! The arena-based IR graph: operations, regions, blocks and values.
//!
//! All IR entities live inside an owning [`Context`] and are referred to
//! by lightweight copyable handles ([`OpRef`], [`BlockRef`], [`RegionRef`],
//! [`ValueRef`]).  The structure follows MLIR (and pliron's `Context`
//! design): an operation owns a list of regions, a region owns a list of
//! blocks, a block owns an ordered list of operations and a list of block
//! arguments, and every operation produces zero or more result values.
//!
//! # Ownership and handle invalidation
//!
//! The [`Context`] is the single owner of every IR entity; handles are
//! plain arena indices and never dangle in the memory-safety sense, but
//! they can refer to *erased* entities:
//!
//! * Handles are only meaningful for the context that produced them.
//!   Using a handle with a different context (or after
//!   [`Context::reset`]) yields an unrelated entity or an out-of-bounds
//!   panic.
//! * [`Context::erase_op`] marks the operation, its nested
//!   regions/blocks/ops and all produced values dead; the handles remain
//!   valid to *query liveness* ([`Context::op_is_live`],
//!   [`Context::value_is_live`]) but must not be used to navigate.
//! * [`Context::reset`] invalidates every op/block/region/value handle at
//!   once while keeping the interned type/attribute storage alive:
//!   [`TypeRef`]/[`AttrRef`] handles survive a reset, which is what makes
//!   long-lived pooled contexts (see `wse_stencil::CompileService`) cheap
//!   to reuse across compiles.
//! * Interned [`TypeRef`]/[`AttrRef`] handles are never invalidated for
//!   the lifetime of the context: interned storage is append-only.

use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};

use crate::attributes::{AttrMap, Attribute};
use crate::fxhash::{FxHashMap, FxHasher};
use crate::types::Type;

/// Identifier of an operation within a [`Context`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OpId(pub(crate) u32);

/// Identifier of a block within a [`Context`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub(crate) u32);

/// Identifier of a region within a [`Context`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RegionId(pub(crate) u32);

/// Identifier of an SSA value within a [`Context`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ValueId(pub(crate) u32);

/// Canonical handle name for operations (alias of [`OpId`]).
pub type OpRef = OpId;

/// Canonical handle name for blocks (alias of [`BlockId`]).
pub type BlockRef = BlockId;

/// Canonical handle name for regions (alias of [`RegionId`]).
pub type RegionRef = RegionId;

/// Canonical handle name for SSA values (alias of [`ValueId`]).
pub type ValueRef = ValueId;

/// Handle of an interned [`Type`] inside a [`Context`].
///
/// Obtained from [`Context::intern_type`]; two types are structurally
/// equal if and only if their `TypeRef`s are equal (within one context).
/// Never invalidated — interned storage is append-only and survives
/// [`Context::reset`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TypeRef(pub(crate) u32);

/// Handle of an interned [`Attribute`] inside a [`Context`].
///
/// Same canonicalization guarantee as [`TypeRef`]: structural equality of
/// attributes is handle equality within one context, and handles survive
/// [`Context::reset`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AttrRef(pub(crate) u32);

impl fmt::Display for OpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "op{}", self.0)
    }
}

impl fmt::Display for ValueId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// How an SSA value is defined.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValueDef {
    /// The `index`-th result of operation `op`.
    OpResult {
        /// Defining operation.
        op: OpId,
        /// Result index.
        index: usize,
    },
    /// The `index`-th argument of block `block`.
    BlockArg {
        /// Owning block.
        block: BlockId,
        /// Argument index.
        index: usize,
    },
}

#[derive(Debug, Clone)]
pub(crate) struct ValueData {
    pub ty: TypeRef,
    pub def: ValueDef,
    pub live: bool,
}

/// The payload of an operation.
#[derive(Debug, Clone)]
pub struct OpData {
    /// Fully qualified operation name, e.g. `"stencil.apply"`.
    pub name: String,
    /// SSA operands.
    pub operands: Vec<ValueId>,
    /// SSA results.
    pub results: Vec<ValueId>,
    /// Named attributes.
    pub attrs: AttrMap,
    /// Regions owned by this operation.
    pub regions: Vec<RegionId>,
    /// Parent block (None for detached / top-level ops).
    pub parent_block: Option<BlockId>,
    pub(crate) live: bool,
}

/// The payload of a block.
#[derive(Debug, Clone)]
pub struct BlockData {
    /// Block arguments.
    pub args: Vec<ValueId>,
    /// Ordered operations.
    pub ops: Vec<OpId>,
    /// Parent region.
    pub parent_region: Option<RegionId>,
    pub(crate) live: bool,
}

/// The payload of a region.
#[derive(Debug, Clone)]
pub struct RegionData {
    /// Ordered blocks (the first block is the entry block).
    pub blocks: Vec<BlockId>,
    /// Owning operation.
    pub parent_op: Option<OpId>,
    pub(crate) live: bool,
}

/// Error raised by IR manipulation helpers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IrError {
    /// Human-readable error message.
    pub message: String,
}

impl IrError {
    /// Creates an error with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        Self { message: message.into() }
    }
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ir error: {}", self.message)
    }
}

impl std::error::Error for IrError {}

/// Result alias used throughout the IR crate.
pub type IrResult<T> = Result<T, IrError>;

/// The arena owning every operation, region, block, value, and the
/// interned type/attribute storage.
///
/// See the [module documentation](self) for the ownership and
/// handle-invalidation rules.
#[derive(Debug, Default, Clone)]
pub struct Context {
    ops: Vec<OpData>,
    blocks: Vec<BlockData>,
    regions: Vec<RegionData>,
    values: Vec<ValueData>,
    /// Interned type storage (append-only; survives [`Context::reset`]).
    types: Vec<Type>,
    /// Storage uniquer for types: structural value → canonical handle.
    type_map: FxHashMap<Type, TypeRef>,
    /// Interned attribute storage (append-only; survives reset).
    attr_storage: Vec<Attribute>,
    /// Storage uniquer for attributes.
    attr_map: FxHashMap<Attribute, AttrRef>,
}

/// Backwards-compatible name of [`Context`] (the pre-interning API).
pub type IrContext = Context;

impl Context {
    /// Creates an empty context.
    pub fn new() -> Self {
        Self::default()
    }

    /// Clears every operation, region, block and value while *keeping* the
    /// interned type/attribute storage and all arena capacity.
    ///
    /// This is the primitive behind context pooling: a long-lived context
    /// can be reused across compiles without re-interning the (heavily
    /// shared) types and without reallocating the arenas.  Every
    /// [`OpRef`]/[`BlockRef`]/[`RegionRef`]/[`ValueRef`] handed out before
    /// the reset is invalidated; [`TypeRef`]/[`AttrRef`] handles survive.
    pub fn reset(&mut self) {
        self.ops.clear();
        self.blocks.clear();
        self.regions.clear();
        self.values.clear();
    }

    // ------------------------------------------------------------- interning

    /// Interns a type, returning its canonical handle.
    ///
    /// Structurally equal types always return the same handle, so handle
    /// equality is structural equality (the proptest
    /// `interning_is_canonical` pins this).  The first occurrence pays one
    /// hash + clone; later occurrences are a map hit.
    pub fn intern_type(&mut self, ty: Type) -> TypeRef {
        if let Some(&r) = self.type_map.get(&ty) {
            return r;
        }
        let r = TypeRef(self.types.len() as u32);
        self.types.push(ty.clone());
        self.type_map.insert(ty, r);
        r
    }

    /// The interned type behind a handle.
    pub fn type_of(&self, r: TypeRef) -> &Type {
        &self.types[r.0 as usize]
    }

    /// Number of distinct interned types.
    pub fn num_interned_types(&self) -> usize {
        self.types.len()
    }

    /// Interns an attribute, returning its canonical handle.
    ///
    /// Same canonicalization guarantee as [`Context::intern_type`].
    pub fn intern_attr(&mut self, attr: Attribute) -> AttrRef {
        if let Some(&r) = self.attr_map.get(&attr) {
            return r;
        }
        let r = AttrRef(self.attr_storage.len() as u32);
        self.attr_storage.push(attr.clone());
        self.attr_map.insert(attr, r);
        r
    }

    /// The interned attribute behind a handle.
    pub fn attr_of(&self, r: AttrRef) -> &Attribute {
        &self.attr_storage[r.0 as usize]
    }

    /// Number of distinct interned attributes.
    pub fn num_interned_attrs(&self) -> usize {
        self.attr_storage.len()
    }

    // ---------------------------------------------------------------- values

    pub(crate) fn new_value(&mut self, ty: Type, def: ValueDef) -> ValueId {
        let ty = self.intern_type(ty);
        self.new_value_of(ty, def)
    }

    pub(crate) fn new_value_of(&mut self, ty: TypeRef, def: ValueDef) -> ValueId {
        let id = ValueId(self.values.len() as u32);
        self.values.push(ValueData { ty, def, live: true });
        id
    }

    /// Type of a value.
    pub fn value_type(&self, v: ValueId) -> &Type {
        self.type_of(self.values[v.0 as usize].ty)
    }

    /// Interned type handle of a value.
    pub fn value_type_ref(&self, v: ValueId) -> TypeRef {
        self.values[v.0 as usize].ty
    }

    /// Overwrites the type of a value (used by type-conversion passes).
    pub fn set_value_type(&mut self, v: ValueId, ty: Type) {
        let ty = self.intern_type(ty);
        self.values[v.0 as usize].ty = ty;
    }

    /// How the value is defined.
    pub fn value_def(&self, v: ValueId) -> ValueDef {
        self.values[v.0 as usize].def
    }

    /// The operation defining this value, if it is an op result.
    pub fn defining_op(&self, v: ValueId) -> Option<OpId> {
        match self.value_def(v) {
            ValueDef::OpResult { op, .. } => Some(op),
            ValueDef::BlockArg { .. } => None,
        }
    }

    /// Returns true if the value has not been invalidated by an erase.
    pub fn value_is_live(&self, v: ValueId) -> bool {
        self.values.get(v.0 as usize).map(|d| d.live).unwrap_or(false)
    }

    // ------------------------------------------------------------------- ops

    /// Creates a detached operation (not yet inserted into a block).
    pub fn create_op(
        &mut self,
        name: impl Into<String>,
        operands: Vec<ValueId>,
        result_types: Vec<Type>,
        attrs: AttrMap,
        num_regions: usize,
    ) -> OpId {
        let result_types: Vec<TypeRef> =
            result_types.into_iter().map(|t| self.intern_type(t)).collect();
        self.create_op_of(name, operands, result_types, attrs, num_regions)
    }

    /// [`Context::create_op`] taking pre-interned result types — the
    /// allocation-free path used by cloning and type-preserving rewrites.
    pub fn create_op_of(
        &mut self,
        name: impl Into<String>,
        operands: Vec<ValueId>,
        result_types: Vec<TypeRef>,
        attrs: AttrMap,
        num_regions: usize,
    ) -> OpId {
        let id = OpId(self.ops.len() as u32);
        let mut results = Vec::with_capacity(result_types.len());
        self.ops.push(OpData {
            name: name.into(),
            operands,
            results: Vec::new(),
            attrs,
            regions: Vec::new(),
            parent_block: None,
            live: true,
        });
        for (index, ty) in result_types.into_iter().enumerate() {
            let v = self.new_value_of(ty, ValueDef::OpResult { op: id, index });
            results.push(v);
        }
        self.ops[id.0 as usize].results = results;
        for _ in 0..num_regions {
            let r = self.create_region(Some(id));
            self.ops[id.0 as usize].regions.push(r);
        }
        id
    }

    /// Read access to an operation.
    pub fn op(&self, op: OpId) -> &OpData {
        &self.ops[op.0 as usize]
    }

    /// Mutable access to an operation.
    pub fn op_mut(&mut self, op: OpId) -> &mut OpData {
        &mut self.ops[op.0 as usize]
    }

    /// The operation name (e.g. `"arith.addf"`).
    pub fn op_name(&self, op: OpId) -> &str {
        &self.op(op).name
    }

    /// Returns true if the operation is live (not erased).
    pub fn op_is_live(&self, op: OpId) -> bool {
        self.ops.get(op.0 as usize).map(|o| o.live).unwrap_or(false)
    }

    /// The `index`-th result of an operation.
    pub fn result(&self, op: OpId, index: usize) -> ValueId {
        self.op(op).results[index]
    }

    /// All results of an operation.
    pub fn results(&self, op: OpId) -> &[ValueId] {
        &self.op(op).results
    }

    /// The `index`-th operand of an operation.
    pub fn operand(&self, op: OpId, index: usize) -> ValueId {
        self.op(op).operands[index]
    }

    /// All operands of an operation.
    pub fn operands(&self, op: OpId) -> &[ValueId] {
        &self.op(op).operands
    }

    /// Replaces the operand list of an operation.
    pub fn set_operands(&mut self, op: OpId, operands: Vec<ValueId>) {
        self.op_mut(op).operands = operands;
    }

    /// Gets an attribute by name.
    pub fn attr(&self, op: OpId, name: &str) -> Option<&Attribute> {
        self.op(op).attrs.get(name)
    }

    /// Sets an attribute.
    pub fn set_attr(&mut self, op: OpId, name: impl Into<String>, attr: Attribute) {
        self.op_mut(op).attrs.insert(name.into(), attr);
    }

    /// Removes an attribute, returning it.
    pub fn remove_attr(&mut self, op: OpId, name: &str) -> Option<Attribute> {
        self.op_mut(op).attrs.remove(name)
    }

    /// Integer attribute convenience accessor.
    pub fn attr_int(&self, op: OpId, name: &str) -> Option<i64> {
        self.attr(op, name).and_then(Attribute::as_int)
    }

    /// String attribute convenience accessor.
    pub fn attr_str(&self, op: OpId, name: &str) -> Option<&str> {
        self.attr(op, name).and_then(Attribute::as_str)
    }

    /// Regions owned by an operation.
    pub fn op_regions(&self, op: OpId) -> &[RegionId] {
        &self.op(op).regions
    }

    /// The single region of an operation.
    ///
    /// # Panics
    /// Panics if the operation does not own exactly the requested region.
    pub fn op_region(&self, op: OpId, index: usize) -> RegionId {
        self.op(op).regions[index]
    }

    /// Adds an extra (empty) region to an operation and returns it.
    pub fn add_region(&mut self, op: OpId) -> RegionId {
        let r = self.create_region(Some(op));
        self.op_mut(op).regions.push(r);
        r
    }

    // --------------------------------------------------------------- regions

    pub(crate) fn create_region(&mut self, parent_op: Option<OpId>) -> RegionId {
        let id = RegionId(self.regions.len() as u32);
        self.regions.push(RegionData { blocks: Vec::new(), parent_op, live: true });
        id
    }

    /// Read access to a region.
    pub fn region(&self, r: RegionId) -> &RegionData {
        &self.regions[r.0 as usize]
    }

    /// Blocks of a region.
    pub fn region_blocks(&self, r: RegionId) -> &[BlockId] {
        &self.region(r).blocks
    }

    /// Entry (first) block of a region, if any.
    pub fn entry_block(&self, r: RegionId) -> Option<BlockId> {
        self.region(r).blocks.first().copied()
    }

    // ---------------------------------------------------------------- blocks

    /// Appends a new block with the given argument types to a region.
    pub fn add_block(&mut self, region: RegionId, arg_types: Vec<Type>) -> BlockId {
        let arg_types: Vec<TypeRef> = arg_types.into_iter().map(|t| self.intern_type(t)).collect();
        self.add_block_of(region, arg_types)
    }

    /// [`Context::add_block`] taking pre-interned argument types.
    pub fn add_block_of(&mut self, region: RegionId, arg_types: Vec<TypeRef>) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(BlockData {
            args: Vec::new(),
            ops: Vec::new(),
            parent_region: Some(region),
            live: true,
        });
        let args: Vec<ValueId> = arg_types
            .into_iter()
            .enumerate()
            .map(|(index, ty)| self.new_value_of(ty, ValueDef::BlockArg { block: id, index }))
            .collect();
        self.blocks[id.0 as usize].args = args;
        self.regions[region.0 as usize].blocks.push(id);
        id
    }

    /// Read access to a block.
    pub fn block(&self, b: BlockId) -> &BlockData {
        &self.blocks[b.0 as usize]
    }

    /// Arguments of a block.
    pub fn block_args(&self, b: BlockId) -> &[ValueId] {
        &self.block(b).args
    }

    /// Adds an extra argument to a block, returning the new value.
    pub fn add_block_arg(&mut self, b: BlockId, ty: Type) -> ValueId {
        let index = self.block(b).args.len();
        let v = self.new_value(ty, ValueDef::BlockArg { block: b, index });
        self.blocks[b.0 as usize].args.push(v);
        v
    }

    /// Operations of a block, in order.
    pub fn block_ops(&self, b: BlockId) -> &[OpId] {
        &self.block(b).ops
    }

    /// Appends a detached operation to the end of a block.
    pub fn append_op(&mut self, block: BlockId, op: OpId) {
        self.insert_op(block, self.block(block).ops.len(), op);
    }

    /// Inserts a detached operation at `index` within a block.
    ///
    /// # Panics
    /// Panics if the operation is already attached to a block.
    pub fn insert_op(&mut self, block: BlockId, index: usize, op: OpId) {
        assert!(
            self.op(op).parent_block.is_none(),
            "operation {op} is already attached to a block"
        );
        self.blocks[block.0 as usize].ops.insert(index, op);
        self.op_mut(op).parent_block = Some(block);
    }

    /// Detaches an operation from its parent block (does not erase it).
    pub fn detach_op(&mut self, op: OpId) {
        if let Some(block) = self.op(op).parent_block {
            let ops = &mut self.blocks[block.0 as usize].ops;
            if let Some(pos) = ops.iter().position(|&o| o == op) {
                ops.remove(pos);
            }
            self.op_mut(op).parent_block = None;
        }
    }

    /// Position of an operation within its parent block.
    pub fn op_index_in_block(&self, op: OpId) -> Option<usize> {
        let block = self.op(op).parent_block?;
        self.block(block).ops.iter().position(|&o| o == op)
    }

    // ------------------------------------------------------------ navigation

    /// Parent block of an operation.
    pub fn parent_block(&self, op: OpId) -> Option<BlockId> {
        self.op(op).parent_block
    }

    /// Parent region of a block.
    pub fn parent_region(&self, block: BlockId) -> Option<RegionId> {
        self.block(block).parent_region
    }

    /// Operation owning a region.
    pub fn region_parent_op(&self, region: RegionId) -> Option<OpId> {
        self.region(region).parent_op
    }

    /// The operation enclosing `op` (the op owning the region containing
    /// `op`'s parent block).
    pub fn parent_op(&self, op: OpId) -> Option<OpId> {
        let block = self.parent_block(op)?;
        let region = self.parent_region(block)?;
        self.region_parent_op(region)
    }

    /// Walks up the parent chain until an op with the given name is found.
    pub fn ancestor_of_name(&self, op: OpId, name: &str) -> Option<OpId> {
        let mut cur = self.parent_op(op);
        while let Some(p) = cur {
            if self.op_name(p) == name {
                return Some(p);
            }
            cur = self.parent_op(p);
        }
        None
    }

    // --------------------------------------------------------------- walking

    /// Pre-order walk of `root` and every operation nested within it.
    pub fn walk(&self, root: OpId) -> Vec<OpId> {
        let mut out = Vec::new();
        self.walk_into(root, &mut out);
        out
    }

    fn walk_into(&self, op: OpId, out: &mut Vec<OpId>) {
        if !self.op_is_live(op) {
            return;
        }
        out.push(op);
        for &r in &self.op(op).regions {
            for &b in &self.region(r).blocks {
                for &nested in &self.block(b).ops {
                    self.walk_into(nested, out);
                }
            }
        }
    }

    /// All live operations nested in `root` (excluding `root`) whose name
    /// equals `name`, in pre-order.
    pub fn walk_named(&self, root: OpId, name: &str) -> Vec<OpId> {
        self.walk(root).into_iter().skip(1).filter(|&o| self.op_name(o) == name).collect()
    }

    /// All live operations (any nesting) in pre-order, including `root`.
    pub fn walk_filtered(&self, root: OpId, mut pred: impl FnMut(&str) -> bool) -> Vec<OpId> {
        self.walk(root).into_iter().filter(|&o| pred(self.op_name(o))).collect()
    }

    // ------------------------------------------------------------------ uses

    /// Every (operation, operand index) pair that uses `value`, across the
    /// whole context.
    pub fn uses_of(&self, value: ValueId) -> Vec<(OpId, usize)> {
        let mut out = Vec::new();
        for (i, op) in self.ops.iter().enumerate() {
            if !op.live {
                continue;
            }
            for (idx, &operand) in op.operands.iter().enumerate() {
                if operand == value {
                    out.push((OpId(i as u32), idx));
                }
            }
        }
        out
    }

    /// Returns true if a value has at least one use.
    pub fn has_uses(&self, value: ValueId) -> bool {
        self.ops.iter().any(|op| op.live && op.operands.contains(&value))
    }

    /// Replaces every use of `old` with `new`.
    pub fn replace_all_uses(&mut self, old: ValueId, new: ValueId) {
        for op in self.ops.iter_mut() {
            if !op.live {
                continue;
            }
            for operand in op.operands.iter_mut() {
                if *operand == old {
                    *operand = new;
                }
            }
        }
    }

    /// Replaces uses of `old` with `new` only inside ops nested under `root`
    /// (including `root`).
    pub fn replace_uses_within(&mut self, root: OpId, old: ValueId, new: ValueId) {
        for op in self.walk(root) {
            for operand in self.op_mut(op).operands.iter_mut() {
                if *operand == old {
                    *operand = new;
                }
            }
        }
    }

    // --------------------------------------------------------------- erasure

    /// Erases an operation and (recursively) everything nested inside it.
    ///
    /// The operation's results become invalid; callers must have replaced
    /// their uses first (this is checked by the verifier, not here).
    pub fn erase_op(&mut self, op: OpId) {
        self.detach_op(op);
        self.erase_op_inner(op);
    }

    fn erase_op_inner(&mut self, op: OpId) {
        let regions = self.op(op).regions.clone();
        for r in regions {
            let blocks = self.region(r).blocks.clone();
            for b in blocks {
                let ops = self.block(b).ops.clone();
                for nested in ops {
                    self.erase_op_inner(nested);
                }
                for &arg in &self.blocks[b.0 as usize].args.clone() {
                    self.values[arg.0 as usize].live = false;
                }
                self.blocks[b.0 as usize].live = false;
            }
            self.regions[r.0 as usize].live = false;
        }
        for &res in &self.ops[op.0 as usize].results.clone() {
            self.values[res.0 as usize].live = false;
        }
        self.ops[op.0 as usize].live = false;
    }

    /// Number of live operations in the whole context.
    pub fn num_live_ops(&self) -> usize {
        self.ops.iter().filter(|o| o.live).count()
    }

    // --------------------------------------------------------------- cloning

    /// Clones operation `op` (with all nested regions) into a detached
    /// operation, remapping operands through `value_map`.  Newly created
    /// result values and block arguments are added to `value_map` so later
    /// clones observe them.
    pub fn clone_op(&mut self, op: OpId, value_map: &mut HashMap<ValueId, ValueId>) -> OpId {
        let data = self.op(op).clone();
        let operands: Vec<ValueId> =
            data.operands.iter().map(|v| *value_map.get(v).unwrap_or(v)).collect();
        // Result and block-argument types are copied as interned handles:
        // cloning never re-walks or re-allocates type structure.
        let result_types: Vec<TypeRef> =
            data.results.iter().map(|&v| self.value_type_ref(v)).collect();
        let new_op =
            self.create_op_of(data.name.clone(), operands, result_types, data.attrs.clone(), 0);
        for (old, new) in data.results.iter().zip(self.op(new_op).results.to_vec()) {
            value_map.insert(*old, new);
        }
        for &region in &data.regions {
            let new_region = self.add_region(new_op);
            let blocks = self.region(region).blocks.clone();
            for block in blocks {
                let arg_types: Vec<TypeRef> =
                    self.block(block).args.iter().map(|&a| self.value_type_ref(a)).collect();
                let new_block = self.add_block_of(new_region, arg_types);
                let old_args = self.block(block).args.to_vec();
                let new_args = self.block(new_block).args.to_vec();
                for (o, n) in old_args.iter().zip(new_args.iter()) {
                    value_map.insert(*o, *n);
                }
                let ops = self.block(block).ops.clone();
                for nested in ops {
                    let cloned = self.clone_op(nested, value_map);
                    self.append_op(new_block, cloned);
                }
            }
        }
        new_op
    }

    /// Clones all operations of `src_block` into `dst_block` starting at
    /// `index`, remapping values through `value_map`.  Returns the cloned
    /// operations in order.
    pub fn clone_block_ops_into(
        &mut self,
        src_block: BlockId,
        dst_block: BlockId,
        mut index: usize,
        value_map: &mut HashMap<ValueId, ValueId>,
    ) -> Vec<OpId> {
        let ops = self.block(src_block).ops.clone();
        let mut cloned = Vec::with_capacity(ops.len());
        for op in ops {
            let new_op = self.clone_op(op, value_map);
            self.insert_op(dst_block, index, new_op);
            index += 1;
            cloned.push(new_op);
        }
        cloned
    }

    // -------------------------------------------------------------- movement

    /// Moves all ops of `src_block` (keeping their ids) to the end of
    /// `dst_block`.
    pub fn move_block_ops(&mut self, src_block: BlockId, dst_block: BlockId) {
        let ops = std::mem::take(&mut self.blocks[src_block.0 as usize].ops);
        for op in ops {
            self.op_mut(op).parent_block = Some(dst_block);
            self.blocks[dst_block.0 as usize].ops.push(op);
        }
    }

    // ----------------------------------------------------------- fingerprint

    /// A stable structural hash of the live IR rooted at `root`.
    ///
    /// The fingerprint depends only on structure — op names, attributes,
    /// value types, and the def/use wiring via a local pre-order value
    /// numbering — never on arena indices, so two contexts holding
    /// structurally identical modules produce the same fingerprint even
    /// when their handles differ (e.g. a pooled context after many
    /// [`Context::reset`] cycles).  This is the cache key of the compile
    /// service's artifact cache.
    pub fn fingerprint(&self, root: OpId) -> u64 {
        let mut hasher = FxHasher::default();
        let mut numbering: FxHashMap<ValueId, u32> = FxHashMap::default();
        self.fingerprint_op(root, &mut hasher, &mut numbering);
        hasher.finish()
    }

    fn fingerprint_op(
        &self,
        op: OpId,
        hasher: &mut FxHasher,
        numbering: &mut FxHashMap<ValueId, u32>,
    ) {
        if !self.op_is_live(op) {
            return;
        }
        let data = self.op(op);
        data.name.hash(hasher);
        for operand in &data.operands {
            // Values are numbered in definition (pre-order) order; an
            // operand defined outside `root` hashes as a sentinel.
            numbering.get(operand).copied().unwrap_or(u32::MAX).hash(hasher);
        }
        for &result in &data.results {
            let n = numbering.len() as u32;
            numbering.insert(result, n);
            self.value_type(result).hash(hasher);
        }
        data.attrs.hash(hasher);
        (data.regions.len() as u32).hash(hasher);
        for &r in &data.regions {
            let blocks = &self.region(r).blocks;
            (blocks.len() as u32).hash(hasher);
            for &b in blocks {
                let block = self.block(b);
                for &arg in &block.args {
                    let n = numbering.len() as u32;
                    numbering.insert(arg, n);
                    self.value_type(arg).hash(hasher);
                }
                for &nested in &block.ops {
                    self.fingerprint_op(nested, hasher, numbering);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_module(ctx: &mut IrContext) -> (OpId, BlockId) {
        let module = ctx.create_op("builtin.module", vec![], vec![], AttrMap::new(), 1);
        let body = ctx.add_block(ctx.op_region(module, 0), vec![]);
        (module, body)
    }

    #[test]
    fn create_and_navigate() {
        let mut ctx = IrContext::new();
        let (module, body) = small_module(&mut ctx);
        let c = ctx.create_op("arith.constant", vec![], vec![Type::f32()], AttrMap::new(), 0);
        ctx.append_op(body, c);
        let v = ctx.result(c, 0);
        let add = ctx.create_op("arith.addf", vec![v, v], vec![Type::f32()], AttrMap::new(), 0);
        ctx.append_op(body, add);

        assert_eq!(ctx.op_name(module), "builtin.module");
        assert_eq!(ctx.block_ops(body), &[c, add]);
        assert_eq!(ctx.parent_op(add), Some(module));
        assert_eq!(ctx.defining_op(v), Some(c));
        assert_eq!(ctx.value_type(v), &Type::f32());
        assert_eq!(ctx.walk(module), vec![module, c, add]);
        assert_eq!(ctx.walk_named(module, "arith.addf"), vec![add]);
        assert_eq!(ctx.op_index_in_block(add), Some(1));
    }

    #[test]
    fn uses_and_rauw() {
        let mut ctx = IrContext::new();
        let (_module, body) = small_module(&mut ctx);
        let a = ctx.create_op("arith.constant", vec![], vec![Type::f32()], AttrMap::new(), 0);
        let b = ctx.create_op("arith.constant", vec![], vec![Type::f32()], AttrMap::new(), 0);
        ctx.append_op(body, a);
        ctx.append_op(body, b);
        let va = ctx.result(a, 0);
        let vb = ctx.result(b, 0);
        let add = ctx.create_op("arith.addf", vec![va, va], vec![Type::f32()], AttrMap::new(), 0);
        ctx.append_op(body, add);

        assert_eq!(ctx.uses_of(va).len(), 2);
        assert!(ctx.has_uses(va));
        assert!(!ctx.has_uses(vb));
        ctx.replace_all_uses(va, vb);
        assert!(!ctx.has_uses(va));
        assert_eq!(ctx.uses_of(vb).len(), 2);
        assert_eq!(ctx.operands(add), &[vb, vb]);
    }

    #[test]
    fn erase_recursively_invalidates() {
        let mut ctx = IrContext::new();
        let (module, body) = small_module(&mut ctx);
        let outer = ctx.create_op("scf.for", vec![], vec![], AttrMap::new(), 1);
        let inner_block = ctx.add_block(ctx.op_region(outer, 0), vec![Type::index()]);
        let inner = ctx.create_op("arith.constant", vec![], vec![Type::f32()], AttrMap::new(), 0);
        ctx.append_op(inner_block, inner);
        ctx.append_op(body, outer);

        assert_eq!(ctx.num_live_ops(), 3);
        ctx.erase_op(outer);
        assert_eq!(ctx.num_live_ops(), 1);
        assert!(!ctx.op_is_live(outer));
        assert!(!ctx.op_is_live(inner));
        assert!(ctx.op_is_live(module));
        assert!(ctx.block_ops(body).is_empty());
        assert!(!ctx.value_is_live(ctx.result(inner, 0)));
    }

    #[test]
    fn detach_and_reinsert() {
        let mut ctx = IrContext::new();
        let (_m, body) = small_module(&mut ctx);
        let a = ctx.create_op("a.a", vec![], vec![], AttrMap::new(), 0);
        let b = ctx.create_op("b.b", vec![], vec![], AttrMap::new(), 0);
        ctx.append_op(body, a);
        ctx.append_op(body, b);
        ctx.detach_op(a);
        assert_eq!(ctx.block_ops(body), &[b]);
        ctx.insert_op(body, 1, a);
        assert_eq!(ctx.block_ops(body), &[b, a]);
    }

    #[test]
    fn clone_op_remaps_nested_values() {
        let mut ctx = IrContext::new();
        let (_m, body) = small_module(&mut ctx);
        // Build an op with a region that uses its block argument.
        let apply = ctx.create_op("stencil.apply", vec![], vec![Type::f32()], AttrMap::new(), 1);
        let region = ctx.op_region(apply, 0);
        let blk = ctx.add_block(region, vec![Type::f32()]);
        let arg = ctx.block_args(blk)[0];
        let add = ctx.create_op("arith.addf", vec![arg, arg], vec![Type::f32()], AttrMap::new(), 0);
        ctx.append_op(blk, add);
        ctx.append_op(body, apply);

        let mut map = HashMap::new();
        let cloned = ctx.clone_op(apply, &mut map);
        ctx.append_op(body, cloned);
        // The cloned add must reference the cloned block argument, not the
        // original one.
        let cloned_region = ctx.op_region(cloned, 0);
        let cloned_blk = ctx.entry_block(cloned_region).unwrap();
        let cloned_add = ctx.block_ops(cloned_blk)[0];
        let cloned_arg = ctx.block_args(cloned_blk)[0];
        assert_ne!(cloned_arg, arg);
        assert_eq!(ctx.operands(cloned_add), &[cloned_arg, cloned_arg]);
        // Original results map to the clone's results.
        assert_eq!(map.get(&ctx.result(apply, 0)), Some(&ctx.result(cloned, 0)));
    }

    #[test]
    fn attributes_roundtrip() {
        let mut ctx = IrContext::new();
        let op = ctx.create_op("test.op", vec![], vec![], AttrMap::new(), 0);
        ctx.set_attr(op, "num_chunks", Attribute::int(2));
        ctx.set_attr(op, "name", Attribute::str("kernel"));
        assert_eq!(ctx.attr_int(op, "num_chunks"), Some(2));
        assert_eq!(ctx.attr_str(op, "name"), Some("kernel"));
        assert_eq!(ctx.remove_attr(op, "num_chunks"), Some(Attribute::int(2)));
        assert_eq!(ctx.attr(op, "num_chunks"), None);
    }

    #[test]
    fn block_arguments() {
        let mut ctx = IrContext::new();
        let op = ctx.create_op("func.func", vec![], vec![], AttrMap::new(), 1);
        let block = ctx.add_block(ctx.op_region(op, 0), vec![Type::f32(), Type::index()]);
        assert_eq!(ctx.block_args(block).len(), 2);
        let extra = ctx.add_block_arg(block, Type::f32());
        assert_eq!(ctx.block_args(block).len(), 3);
        assert_eq!(ctx.value_def(extra), ValueDef::BlockArg { block, index: 2 });
    }

    #[test]
    fn interning_dedupes_structurally_equal_types_and_attrs() {
        let mut ctx = Context::new();
        let t1 = ctx.intern_type(Type::tensor(vec![4, 255], Type::f32()));
        let t2 = ctx.intern_type(Type::tensor(vec![4, 255], Type::f32()));
        let t3 = ctx.intern_type(Type::tensor(vec![4, 256], Type::f32()));
        assert_eq!(t1, t2, "structural equality is handle equality");
        assert_ne!(t1, t3);
        assert_eq!(ctx.type_of(t1), &Type::tensor(vec![4, 255], Type::f32()));
        let a1 = ctx.intern_attr(Attribute::IndexArray(vec![1, 0, 0]));
        let a2 = ctx.intern_attr(Attribute::IndexArray(vec![1, 0, 0]));
        assert_eq!(a1, a2);
        assert_eq!(ctx.attr_of(a1), &Attribute::IndexArray(vec![1, 0, 0]));
    }

    #[test]
    fn values_share_interned_types() {
        let mut ctx = Context::new();
        let (_m, body) = small_module(&mut ctx);
        let a = ctx.create_op("a.a", vec![], vec![Type::f32()], AttrMap::new(), 0);
        let b = ctx.create_op("b.b", vec![], vec![Type::f32()], AttrMap::new(), 0);
        ctx.append_op(body, a);
        ctx.append_op(body, b);
        assert_eq!(ctx.value_type_ref(ctx.result(a, 0)), ctx.value_type_ref(ctx.result(b, 0)));
    }

    #[test]
    fn reset_clears_ir_but_keeps_interned_storage() {
        let mut ctx = Context::new();
        let (_m, body) = small_module(&mut ctx);
        let c = ctx.create_op("arith.constant", vec![], vec![Type::f32()], AttrMap::new(), 0);
        ctx.append_op(body, c);
        let f32_ref = ctx.value_type_ref(ctx.result(c, 0));
        let interned = ctx.num_interned_types();
        assert!(ctx.num_live_ops() > 0);
        ctx.reset();
        assert_eq!(ctx.num_live_ops(), 0);
        assert_eq!(ctx.num_interned_types(), interned, "interner survives reset");
        assert_eq!(ctx.type_of(f32_ref), &Type::f32(), "type handles survive reset");
        assert_eq!(ctx.intern_type(Type::f32()), f32_ref, "uniquer still canonicalizes");
        // The context is reusable: building new IR starts from fresh ids.
        let (m2, _body2) = small_module(&mut ctx);
        assert_eq!(m2, OpId(0));
    }

    #[test]
    fn fingerprint_is_structural_not_positional() {
        let build = |ctx: &mut Context, pad_values: u32| {
            // Interning/arena churn before building must not affect the
            // fingerprint of the module built afterwards.
            for i in 0..pad_values {
                ctx.intern_type(Type::tensor(vec![i64::from(i) + 2], Type::f32()));
                let junk = ctx.create_op("junk.op", vec![], vec![Type::f32()], AttrMap::new(), 0);
                ctx.erase_op(junk);
            }
            let (module, body) = small_module(ctx);
            let c = ctx.create_op("arith.constant", vec![], vec![Type::f32()], AttrMap::new(), 0);
            ctx.set_attr(c, "value", Attribute::f32(0.5));
            ctx.append_op(body, c);
            let v = ctx.result(c, 0);
            let add = ctx.create_op("arith.addf", vec![v, v], vec![Type::f32()], AttrMap::new(), 0);
            ctx.append_op(body, add);
            ctx.fingerprint(module)
        };
        let mut ctx1 = Context::new();
        let mut ctx2 = Context::new();
        assert_eq!(build(&mut ctx1, 0), build(&mut ctx2, 7), "same structure, same hash");
        // A structural difference (attribute value) changes the hash.
        let mut ctx3 = Context::new();
        let (module, body) = small_module(&mut ctx3);
        let c = ctx3.create_op("arith.constant", vec![], vec![Type::f32()], AttrMap::new(), 0);
        ctx3.set_attr(c, "value", Attribute::f32(0.25));
        ctx3.append_op(body, c);
        let v = ctx3.result(c, 0);
        let add = ctx3.create_op("arith.addf", vec![v, v], vec![Type::f32()], AttrMap::new(), 0);
        ctx3.append_op(body, add);
        assert_ne!(ctx3.fingerprint(module), build(&mut Context::new(), 0));
    }

    #[test]
    fn move_block_ops_preserves_order() {
        let mut ctx = IrContext::new();
        let (_m, body) = small_module(&mut ctx);
        let holder = ctx.create_op("scf.execute_region", vec![], vec![], AttrMap::new(), 1);
        let src = ctx.add_block(ctx.op_region(holder, 0), vec![]);
        let a = ctx.create_op("a.a", vec![], vec![], AttrMap::new(), 0);
        let b = ctx.create_op("b.b", vec![], vec![], AttrMap::new(), 0);
        ctx.append_op(src, a);
        ctx.append_op(src, b);
        ctx.append_op(body, holder);
        ctx.move_block_ops(src, body);
        assert_eq!(ctx.block_ops(body), &[holder, a, b]);
        assert_eq!(ctx.parent_block(a), Some(body));
    }
}
