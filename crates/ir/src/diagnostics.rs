//! The single registry of stable diagnostic codes.
//!
//! Every machine-readable code emitted anywhere in the pipeline — the
//! lowering analysis rejections (`non-linear-degree`), the link-time
//! validation classes (`link-*`), the static-analyzer lint and race codes
//! (`W0xx`/`E1xx`), and the translation-validator verdict (`E201`) — is
//! declared here exactly once, with a severity, a one-line summary, and a
//! rendered explanation.  Harnesses key on [`DiagnosticInfo::code`]
//! strings; the `wse-lint --explain <code>` path renders
//! [`render_explanation`].  A unit test enforces uniqueness and the
//! `W*`-is-warning / `E*`-is-error convention, so a new code cannot
//! silently collide with or shadow an existing one.

/// How severe a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Severity {
    /// The program is rejected, miscompiled-if-ignored, or provably racy.
    Error,
    /// The program is valid but suboptimal, dead, or suspicious.
    Warning,
}

impl std::fmt::Display for Severity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Severity::Error => write!(f, "error"),
            Severity::Warning => write!(f, "warning"),
        }
    }
}

/// One registered diagnostic code.
#[derive(Debug, Clone, Copy)]
pub struct DiagnosticInfo {
    /// The stable machine-readable code (`"W001"`, `"non-linear-degree"`).
    pub code: &'static str,
    /// Whether the code rejects or merely warns.
    pub severity: Severity,
    /// One-line summary, used as the finding headline.
    pub summary: &'static str,
    /// Rendered by `wse-lint --explain`.
    pub explanation: &'static str,
}

/// Every stable diagnostic code in the pipeline, in one table.
pub const REGISTRY: &[DiagnosticInfo] = &[
    // ---- Stencil-level lints (the `wse-lint` driver, `Analyzer::lint`).
    DiagnosticInfo {
        code: "W001",
        severity: Severity::Warning,
        summary: "field is declared but never used by any equation",
        explanation: "A field named in the program's field list is neither read nor written \
                      by any equation.  The loader still allocates an arena column per PE for \
                      it, so an unused field costs wafer memory for nothing.  Remove the \
                      declaration or reference the field.",
    },
    DiagnosticInfo {
        code: "W002",
        severity: Severity::Warning,
        summary: "stored field is overwritten before it is read",
        explanation: "An equation's output field is written again by a later equation before \
                      any equation (or the next timestep through an offset access) reads it, \
                      making the first store dead.  The simulator still executes the dead \
                      sweep every timestep.  Delete the shadowed equation or reorder reads.",
    },
    DiagnosticInfo {
        code: "W003",
        severity: Severity::Warning,
        summary: "equation reads its own output at a shifted offset",
        explanation: "An equation accesses the field it also writes, at a nonzero offset.  \
                      This self-aliasing apply forces the inliner's double-buffer renaming \
                      (extra arena columns plus a copy-back when the field is live-out) and \
                      defeats direct producer/consumer fusion.  If the dependence is not \
                      intentional (a Gauss-Seidel-style in-place update), stage the read \
                      through a separate field.",
    },
    DiagnosticInfo {
        code: "W004",
        severity: Severity::Warning,
        summary: "degree-2 product terms require scratch fields and full-column staging",
        explanation: "The equation multiplies two field accesses.  Products cannot reduce \
                      chunk-by-chunk, so each product term is decomposed onto an internal \
                      scratch field and remote factors are staged as full columns, which \
                      raises per-PE memory and halo traffic.  This is supported and \
                      conformance-checked — the warning only flags the cost.",
    },
    DiagnosticInfo {
        code: "E001",
        severity: Severity::Error,
        summary: "constant offset exceeds the grid extent",
        explanation: "An access applies a constant offset whose magnitude is at least the \
                      grid extent in that dimension, so every application would read outside \
                      the grid.  Frontend validation (`StencilProgram::validate`) rejects \
                      such programs before lowering.",
    },
    DiagnosticInfo {
        code: "E002",
        severity: Severity::Error,
        summary: "accessed halo extent exceeds the supported exchange radius",
        explanation: "The equations access neighbor cells beyond the largest halo the \
                      exchange patterns support (radius 4, the 25-point star).  The lowering \
                      pipeline has no pattern to transmit such a halo, so the program cannot \
                      be compiled for the wafer target.",
    },
    DiagnosticInfo {
        code: "E003",
        severity: Severity::Error,
        summary: "polynomial degree exceeds the supported cap",
        explanation: "The stencil body multiplies three or more field accesses together.  \
                      Lowering supports degree <= 2 (each product term is decomposed onto an \
                      internal scratch field); the compiler rejects higher degrees with the \
                      stable code `non-linear-degree` attached to the offending multiply.",
    },
    // ---- Link-stream race findings (the static race detector).
    DiagnosticInfo {
        code: "E101",
        severity: Severity::Error,
        summary: "sweep phase writes a transmitted buffer whose snapshot capture was elided",
        explanation: "A pre/recv/done instruction writes into the source range of a \
                      transmitted field while the kernel's snapshot capture is elided \
                      (`capture == false`).  On the elided path neighbors read the live \
                      arena column during the sweep, so a concurrent band (or a later row of \
                      the same serial sweep) would observe a torn, mid-update column — a \
                      cross-PE write/read race.  The snapshot-elision pass must not fire \
                      here; this finding means a rewrite broke its precondition.",
    },
    DiagnosticInfo {
        code: "E102",
        severity: Severity::Error,
        summary: "commit block reads a neighbor slot",
        explanation: "A deferred-commit instruction sources a receive slot.  Commits run \
                      after every band's sweep barrier, when neighbor arenas already hold \
                      post-step state, so a slot read here observes the *next* timestep's \
                      values — the deferral pass explicitly forbids moving slot reads into \
                      the commit window.  This finding means a rewrite broke that fence.",
    },
    DiagnosticInfo {
        code: "W101",
        severity: Severity::Warning,
        summary: "snapshot capture is retained but no sweep write touches a snapped column",
        explanation: "The kernel captures snapshots of its transmitted columns, yet no \
                      pre/recv/done instruction writes into any snapped source range — the \
                      live arena columns are stable for the whole sweep, so the capture \
                      (and its per-PE snapshot memory) could be elided.  Harmless, but the \
                      optimizer left per-step copy bandwidth on the table.",
    },
    // ---- Translation validation (link-time optimizer rewrites).
    DiagnosticInfo {
        code: "E201",
        severity: Severity::Error,
        summary: "optimizer rewrite changed the program's observable dataflow",
        explanation: "The translation validator abstractly executes the linked instruction \
                      stream before and after an optimizer pass and compares the symbolic \
                      value of every observable field element.  A mismatch means the rewrite \
                      dropped or reordered a dependence (for example by fusing through an \
                      aliasing write).  The offending pass is rejected and its rewrite \
                      reverted; the conformance driver surfaces the rejection.",
    },
    // ---- Lowering / compile-service rejections (pre-existing codes).
    DiagnosticInfo {
        code: "non-linear",
        severity: Severity::Error,
        summary: "stencil body is not an affine combination of accesses",
        explanation: "The coefficient extractor found a shape it cannot express as \
                      sum(coeff * access) — for example dividing by a field.  Only affine \
                      bodies (plus degree-2 products, see `non-linear-degree`) lower to the \
                      Mul/Mac chains the target executes.",
    },
    DiagnosticInfo {
        code: "non-linear-degree",
        severity: Severity::Error,
        summary: "stencil body multiplies three or more accesses",
        explanation: "Degree-2 products are decomposed onto internal scratch fields, but \
                      degree >= 3 would need chained scratch products, which no target \
                      workload requires; the pipeline rejects the body with this code \
                      attached to the offending multiply.  The lint driver reports the same \
                      condition ahead of compilation as `E003`.",
    },
    DiagnosticInfo {
        code: "unsupported-op",
        severity: Severity::Error,
        summary: "IR contains an operation the lowering pipeline does not handle",
        explanation: "An operation outside the supported stencil/arith subset reached the \
                      lowering analysis.  This usually means a frontend emitted an op the \
                      pipeline has no rule for.",
    },
    DiagnosticInfo {
        code: "malformed-body",
        severity: Severity::Error,
        summary: "stencil apply body is structurally invalid",
        explanation: "The apply region violates a structural invariant (wrong terminator, \
                      missing block argument, dangling access) and cannot be analyzed.",
    },
    DiagnosticInfo {
        code: "internal-panic",
        severity: Severity::Error,
        summary: "a compiler pass panicked",
        explanation: "The compile service caught a panic inside a pass and converted it to a \
                      typed error instead of poisoning the process.  Always a bug; the \
                      panic message names the pass.",
    },
    DiagnosticInfo {
        code: "deadline-exceeded",
        severity: Severity::Error,
        summary: "compilation exceeded the service deadline",
        explanation: "The compile service enforces a wall-clock deadline per request; this \
                      request was cancelled when the deadline expired.",
    },
    // ---- Link-time validation classes (`link.rs` rejection families).
    DiagnosticInfo {
        code: "link-grid",
        severity: Severity::Error,
        summary: "PE grid dimensions are invalid",
        explanation: "The loaded program declares a non-positive PE grid width or height; \
                      nothing can be linked onto an empty fabric.",
    },
    DiagnosticInfo {
        code: "link-geometry",
        severity: Severity::Error,
        summary: "column geometry (z_dim / z_halo) is invalid",
        explanation: "The per-PE column geometry is negative or a field column is shorter \
                      than its halo plus interior, so views into it cannot be laid out.",
    },
    DiagnosticInfo {
        code: "link-buffer-decl",
        severity: Severity::Error,
        summary: "buffer declaration is invalid",
        explanation: "A per-PE buffer is declared with a negative length or a duplicate \
                      name; the arena interner requires unique, sized declarations.",
    },
    DiagnosticInfo {
        code: "link-unknown-buffer",
        severity: Severity::Error,
        summary: "instruction or exchange references an undeclared buffer or field",
        explanation: "A view or exchange spec names a buffer that is not in the program's \
                      declaration list, so no arena range can be resolved for it.",
    },
    DiagnosticInfo {
        code: "link-view-bounds",
        severity: Severity::Error,
        summary: "view is negative or out of the buffer's bounds",
        explanation: "A static view has a negative offset/length or extends past the end of \
                      its buffer.  All bounds are validated at link time precisely so the \
                      execution phase never range-checks.",
    },
    DiagnosticInfo {
        code: "link-exchange",
        severity: Severity::Error,
        summary: "halo-exchange specification is malformed",
        explanation: "The communication spec is inconsistent: non-positive chunking, a \
                      missing `recv_buffer`, receive windows overflowing the receive \
                      buffer, or transmitted-field length mismatches between neighbors.",
    },
    DiagnosticInfo {
        code: "link-layout",
        severity: Severity::Error,
        summary: "arena layout is inconsistent",
        explanation: "Computed buffer layouts overlap each other or extend beyond the arena \
                      length.  Layouts are produced by the linker itself, so this class \
                      indicates an internal invariant violation rather than a bad program.",
    },
];

/// Looks up a registered code.
pub fn lookup(code: &str) -> Option<&'static DiagnosticInfo> {
    REGISTRY.iter().find(|d| d.code == code)
}

/// Renders the full `--explain` text for a code: headline, severity, and
/// the long-form explanation re-wrapped into a paragraph.
pub fn render_explanation(code: &str) -> Option<String> {
    let info = lookup(code)?;
    let mut text = format!("{}: {} — {}\n\n", info.code, info.severity, info.summary);
    // The table's explanation strings carry the source indentation of the
    // registry file; collapse runs of whitespace for terminal rendering.
    let mut words = info.explanation.split_whitespace();
    if let Some(first) = words.next() {
        text.push_str(first);
        for word in words {
            text.push(' ');
            text.push_str(word);
        }
    }
    text.push('\n');
    Some(text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_unique() {
        let mut seen = crate::fxhash::FxHashSet::default();
        for d in REGISTRY {
            assert!(seen.insert(d.code), "duplicate diagnostic code {:?}", d.code);
        }
    }

    #[test]
    fn severity_matches_the_code_prefix() {
        for d in REGISTRY {
            if let Some(rest) = d.code.strip_prefix('W') {
                if rest.chars().all(|c| c.is_ascii_digit()) {
                    assert_eq!(d.severity, Severity::Warning, "{} must be a warning", d.code);
                }
            }
            if let Some(rest) = d.code.strip_prefix('E') {
                if rest.chars().all(|c| c.is_ascii_digit()) {
                    assert_eq!(d.severity, Severity::Error, "{} must be an error", d.code);
                }
            }
            // Legacy rejection classes are all hard errors.
            if d.code.contains('-') {
                assert_eq!(d.severity, Severity::Error, "{} must be an error", d.code);
            }
        }
    }

    #[test]
    fn legacy_compiler_codes_are_registered() {
        for code in [
            "non-linear",
            "non-linear-degree",
            "unsupported-op",
            "malformed-body",
            "internal-panic",
            "deadline-exceeded",
        ] {
            assert!(lookup(code).is_some(), "legacy code {code:?} missing from the registry");
        }
    }

    #[test]
    fn explanations_render() {
        for d in REGISTRY {
            let text = render_explanation(d.code).expect("registered code must render");
            assert!(text.starts_with(d.code), "{text}");
            assert!(!text.contains("  "), "wrapping must collapse indentation: {text:?}");
            assert!(!d.summary.ends_with('.'), "{}: summaries are headline-style", d.code);
        }
        assert!(render_explanation("E999").is_none());
    }
}
