//! Type system for the IR.
//!
//! The type system mirrors the subset of MLIR's builtin types the stencil
//! pipeline needs (integers, floats, index, function, tensor and memref
//! types) plus an extensible [`DialectType`] escape hatch used by the
//! `stencil`, `dmp`, `csl_stencil` and `csl` dialects to define their own
//! parametric types (e.g. `!stencil.temp<...>` or `!csl.dsd`).

use std::fmt;

use crate::attributes::Attribute;

/// Floating point precision kinds supported by the pipeline.
///
/// The WSE natively operates on `f16` and `f32`; `f64` is supported by the
/// front-ends and reference executor but lowered code uses `f32` (all paper
/// benchmarks use single precision).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FloatKind {
    /// IEEE 754 half precision.
    F16,
    /// IEEE 754 single precision.
    F32,
    /// IEEE 754 double precision.
    F64,
}

impl FloatKind {
    /// Bit width of the format.
    pub fn bit_width(self) -> u32 {
        match self {
            FloatKind::F16 => 16,
            FloatKind::F32 => 32,
            FloatKind::F64 => 64,
        }
    }

    /// Size in bytes of one element.
    pub fn byte_width(self) -> u32 {
        self.bit_width() / 8
    }
}

impl fmt::Display for FloatKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FloatKind::F16 => write!(f, "f16"),
            FloatKind::F32 => write!(f, "f32"),
            FloatKind::F64 => write!(f, "f64"),
        }
    }
}

/// Integer signedness semantics, following MLIR.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Signedness {
    /// Signless integers (`i32`), the default in MLIR arithmetic.
    Signless,
    /// Explicitly signed integers (`si16`).
    Signed,
    /// Explicitly unsigned integers (`ui16`).
    Unsigned,
}

/// A dialect-defined parametric type such as `!stencil.temp<...>`.
///
/// The IR core stores dialect types structurally: a dialect name, a type
/// name and an ordered list of attribute parameters.  Dialect crates provide
/// strongly-typed constructors and accessors on top of this representation.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DialectType {
    /// Owning dialect, e.g. `"stencil"`.
    pub dialect: String,
    /// Type name within the dialect, e.g. `"temp"`.
    pub name: String,
    /// Ordered type parameters.
    pub params: Vec<Attribute>,
}

impl DialectType {
    /// Creates a new dialect type.
    pub fn new(
        dialect: impl Into<String>,
        name: impl Into<String>,
        params: Vec<Attribute>,
    ) -> Self {
        Self { dialect: dialect.into(), name: name.into(), params }
    }

    /// Fully qualified name, e.g. `stencil.temp`.
    pub fn full_name(&self) -> String {
        format!("{}.{}", self.dialect, self.name)
    }
}

/// An IR type.
///
/// Types are value types: they are freely cloneable and compared
/// structurally.  This matches how the pipeline uses them (types are small;
/// the deepest nesting is `memref<N x f32>` inside a dialect type).
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Type {
    /// The absence of a value (used for functions with no results).
    #[default]
    None,
    /// An integer type with a width and signedness, e.g. `i16`, `ui16`.
    Integer {
        /// Bit width.
        width: u32,
        /// Signedness semantics.
        signedness: Signedness,
    },
    /// A floating point type.
    Float(FloatKind),
    /// The platform index type (used for loop induction variables, offsets).
    Index,
    /// A function type `(inputs) -> (results)`.
    Function {
        /// Argument types.
        inputs: Vec<Type>,
        /// Result types.
        results: Vec<Type>,
    },
    /// An immutable, value-semantics tensor `tensor<d0 x d1 x ... x elem>`.
    ///
    /// A dimension of `-1` (printed `?`) is dynamic.
    Tensor {
        /// Shape; `-1` encodes a dynamic dimension.
        shape: Vec<i64>,
        /// Element type.
        elem: Box<Type>,
    },
    /// A mutable, reference-semantics buffer `memref<d0 x ... x elem>`.
    MemRef {
        /// Shape; `-1` encodes a dynamic dimension.
        shape: Vec<i64>,
        /// Element type.
        elem: Box<Type>,
    },
    /// A dialect-defined type.
    Dialect(DialectType),
}

impl Type {
    /// Signless integer helper, e.g. `Type::int(16)` is `i16`.
    pub fn int(width: u32) -> Type {
        Type::Integer { width, signedness: Signedness::Signless }
    }

    /// The `i1` boolean type.
    pub fn bool() -> Type {
        Type::int(1)
    }

    /// Unsigned integer helper, e.g. `Type::uint(16)` is `ui16`.
    pub fn uint(width: u32) -> Type {
        Type::Integer { width, signedness: Signedness::Unsigned }
    }

    /// Signed integer helper.
    pub fn sint(width: u32) -> Type {
        Type::Integer { width, signedness: Signedness::Signed }
    }

    /// Single precision float type.
    pub fn f32() -> Type {
        Type::Float(FloatKind::F32)
    }

    /// Half precision float type.
    pub fn f16() -> Type {
        Type::Float(FloatKind::F16)
    }

    /// Double precision float type.
    pub fn f64() -> Type {
        Type::Float(FloatKind::F64)
    }

    /// Index type helper.
    pub fn index() -> Type {
        Type::Index
    }

    /// Ranked tensor type helper.
    pub fn tensor(shape: Vec<i64>, elem: Type) -> Type {
        Type::Tensor { shape, elem: Box::new(elem) }
    }

    /// Ranked memref type helper.
    pub fn memref(shape: Vec<i64>, elem: Type) -> Type {
        Type::MemRef { shape, elem: Box::new(elem) }
    }

    /// Function type helper.
    pub fn function(inputs: Vec<Type>, results: Vec<Type>) -> Type {
        Type::Function { inputs, results }
    }

    /// Dialect type helper.
    pub fn dialect(dialect: &str, name: &str, params: Vec<Attribute>) -> Type {
        Type::Dialect(DialectType::new(dialect, name, params))
    }

    /// Returns `true` for float types.
    pub fn is_float(&self) -> bool {
        matches!(self, Type::Float(_))
    }

    /// Returns `true` for integer types.
    pub fn is_integer(&self) -> bool {
        matches!(self, Type::Integer { .. })
    }

    /// Returns `true` for index types.
    pub fn is_index(&self) -> bool {
        matches!(self, Type::Index)
    }

    /// Returns `true` for tensor types.
    pub fn is_tensor(&self) -> bool {
        matches!(self, Type::Tensor { .. })
    }

    /// Returns `true` for memref types.
    pub fn is_memref(&self) -> bool {
        matches!(self, Type::MemRef { .. })
    }

    /// Returns the shape for tensor/memref types.
    pub fn shape(&self) -> Option<&[i64]> {
        match self {
            Type::Tensor { shape, .. } | Type::MemRef { shape, .. } => Some(shape),
            _ => None,
        }
    }

    /// Returns the element type for tensor/memref types.
    pub fn element_type(&self) -> Option<&Type> {
        match self {
            Type::Tensor { elem, .. } | Type::MemRef { elem, .. } => Some(elem),
            _ => None,
        }
    }

    /// Returns the dialect type payload if this is a dialect type.
    pub fn as_dialect(&self) -> Option<&DialectType> {
        match self {
            Type::Dialect(d) => Some(d),
            _ => None,
        }
    }

    /// Returns the dialect type payload if this is the named dialect type.
    pub fn as_dialect_named(&self, dialect: &str, name: &str) -> Option<&DialectType> {
        self.as_dialect().filter(|d| d.dialect == dialect && d.name == name)
    }

    /// Total number of elements for statically-shaped tensor/memref types.
    pub fn num_elements(&self) -> Option<i64> {
        let shape = self.shape()?;
        if shape.iter().any(|&d| d < 0) {
            return None;
        }
        Some(shape.iter().product::<i64>().max(1))
    }

    /// Size in bytes for statically shaped numeric tensor/memref/scalar types.
    pub fn byte_size(&self) -> Option<u64> {
        match self {
            Type::Float(k) => Some(u64::from(k.byte_width())),
            Type::Integer { width, .. } => Some(u64::from(width / 8).max(1)),
            Type::Index => Some(8),
            Type::Tensor { .. } | Type::MemRef { .. } => {
                let n = self.num_elements()? as u64;
                let e = self.element_type()?.byte_size()?;
                Some(n * e)
            }
            _ => None,
        }
    }

    /// Converts a tensor type to the equivalent memref type (used by
    /// bufferization).  Other types are returned unchanged.
    pub fn tensor_to_memref(&self) -> Type {
        match self {
            Type::Tensor { shape, elem } => {
                Type::MemRef { shape: shape.clone(), elem: Box::new(elem.tensor_to_memref()) }
            }
            Type::Dialect(d) => {
                let params =
                    d.params.iter().map(|p| p.map_types(&|t| t.tensor_to_memref())).collect();
                Type::Dialect(DialectType::new(d.dialect.clone(), d.name.clone(), params))
            }
            other => other.clone(),
        }
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::None => write!(f, "none"),
            Type::Integer { width, signedness } => match signedness {
                Signedness::Signless => write!(f, "i{width}"),
                Signedness::Signed => write!(f, "si{width}"),
                Signedness::Unsigned => write!(f, "ui{width}"),
            },
            Type::Float(k) => write!(f, "{k}"),
            Type::Index => write!(f, "index"),
            Type::Function { inputs, results } => {
                write!(f, "(")?;
                for (i, t) in inputs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{t}")?;
                }
                write!(f, ") -> (")?;
                for (i, t) in results.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{t}")?;
                }
                write!(f, ")")
            }
            Type::Tensor { shape, elem } => {
                write!(f, "tensor<")?;
                for d in shape {
                    if *d < 0 {
                        write!(f, "?x")?;
                    } else {
                        write!(f, "{d}x")?;
                    }
                }
                write!(f, "{elem}>")
            }
            Type::MemRef { shape, elem } => {
                write!(f, "memref<")?;
                for d in shape {
                    if *d < 0 {
                        write!(f, "?x")?;
                    } else {
                        write!(f, "{d}x")?;
                    }
                }
                write!(f, "{elem}>")
            }
            Type::Dialect(d) => {
                write!(f, "!{}.{}", d.dialect, d.name)?;
                if !d.params.is_empty() {
                    write!(f, "<")?;
                    for (i, p) in d.params.iter().enumerate() {
                        if i > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{p}")?;
                    }
                    write!(f, ">")?;
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_display() {
        assert_eq!(Type::int(16).to_string(), "i16");
        assert_eq!(Type::uint(16).to_string(), "ui16");
        assert_eq!(Type::sint(8).to_string(), "si8");
        assert_eq!(Type::f32().to_string(), "f32");
        assert_eq!(Type::index().to_string(), "index");
        assert_eq!(Type::None.to_string(), "none");
    }

    #[test]
    fn tensor_and_memref_display() {
        let t = Type::tensor(vec![510], Type::f32());
        assert_eq!(t.to_string(), "tensor<510xf32>");
        let m = Type::memref(vec![4, 255], Type::f32());
        assert_eq!(m.to_string(), "memref<4x255xf32>");
        let dynamic = Type::tensor(vec![-1, 3], Type::f32());
        assert_eq!(dynamic.to_string(), "tensor<?x3xf32>");
    }

    #[test]
    fn function_display() {
        let t = Type::function(vec![Type::f32(), Type::index()], vec![Type::f32()]);
        assert_eq!(t.to_string(), "(f32, index) -> (f32)");
    }

    #[test]
    fn dialect_type_display() {
        let t = Type::dialect("csl", "dsd", vec![Attribute::str("mem1d_dsd")]);
        assert_eq!(t.to_string(), "!csl.dsd<\"mem1d_dsd\">");
        let plain = Type::dialect("csl", "comptime_struct", vec![]);
        assert_eq!(plain.to_string(), "!csl.comptime_struct");
    }

    #[test]
    fn num_elements_and_bytes() {
        let t = Type::tensor(vec![512], Type::f32());
        assert_eq!(t.num_elements(), Some(512));
        assert_eq!(t.byte_size(), Some(2048));
        let d = Type::tensor(vec![-1], Type::f32());
        assert_eq!(d.num_elements(), None);
        assert_eq!(Type::f32().byte_size(), Some(4));
        assert_eq!(Type::f16().byte_size(), Some(2));
    }

    #[test]
    fn tensor_to_memref_conversion() {
        let t = Type::tensor(vec![510], Type::f32());
        assert_eq!(t.tensor_to_memref(), Type::memref(vec![510], Type::f32()));
        // Nested inside a dialect type parameter.
        let d = Type::dialect("stencil", "temp", vec![Attribute::Type(t)]);
        let converted = d.tensor_to_memref();
        let inner = converted.as_dialect().unwrap().params[0].clone();
        assert_eq!(inner, Attribute::Type(Type::memref(vec![510], Type::f32())));
    }

    #[test]
    fn element_type_accessors() {
        let t = Type::tensor(vec![2, 3], Type::f32());
        assert_eq!(t.shape(), Some(&[2, 3][..]));
        assert_eq!(t.element_type(), Some(&Type::f32()));
        assert!(t.is_tensor());
        assert!(!t.is_memref());
    }
}
