//! Generic textual printer for the IR.
//!
//! The printer emits MLIR's *generic* operation form, which is regular
//! enough to be parsed back by [`crate::parser`]:
//!
//! ```text
//! %0, %1 = "dialect.op"(%2) {attr = 3 : i64} ({
//! ^bb0(%3: f32):
//!   ...
//! }) : (f32) -> (f32, f32)
//! ```

use std::collections::HashMap;
use std::fmt::Write;

use crate::ir::{BlockId, IrContext, OpId, ValueId};

/// Printer state: assigns sequential `%N` names to values.
#[derive(Debug, Default)]
struct PrinterState {
    names: HashMap<ValueId, usize>,
    next: usize,
}

impl PrinterState {
    fn name_of(&mut self, v: ValueId) -> usize {
        if let Some(&n) = self.names.get(&v) {
            return n;
        }
        let n = self.next;
        self.next += 1;
        self.names.insert(v, n);
        n
    }
}

/// Prints an operation (and everything nested inside it) in generic form.
pub fn print_op(ctx: &IrContext, op: OpId) -> String {
    let mut state = PrinterState::default();
    let mut out = String::new();
    print_op_rec(ctx, op, &mut state, 0, &mut out);
    out
}

fn indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("  ");
    }
}

fn print_op_rec(
    ctx: &IrContext,
    op: OpId,
    state: &mut PrinterState,
    level: usize,
    out: &mut String,
) {
    indent(out, level);
    let results = ctx.results(op);
    if !results.is_empty() {
        for (i, &r) in results.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let n = state.name_of(r);
            let _ = write!(out, "%{n}");
        }
        out.push_str(" = ");
    }
    let _ = write!(out, "\"{}\"(", ctx.op_name(op));
    for (i, &operand) in ctx.operands(op).iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let n = state.name_of(operand);
        let _ = write!(out, "%{n}");
    }
    out.push(')');

    let data = ctx.op(op);
    if !data.attrs.is_empty() {
        out.push_str(" {");
        for (i, (k, v)) in data.attrs.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{k} = {v}");
        }
        out.push('}');
    }

    if !data.regions.is_empty() {
        out.push_str(" (");
        for (ri, &region) in data.regions.iter().enumerate() {
            if ri > 0 {
                out.push_str(", ");
            }
            out.push_str("{\n");
            for (bi, &block) in ctx.region_blocks(region).iter().enumerate() {
                print_block(ctx, block, bi, state, level + 1, out);
            }
            indent(out, level);
            out.push('}');
        }
        out.push(')');
    }

    // Trailing function type.
    out.push_str(" : (");
    for (i, &operand) in ctx.operands(op).iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "{}", ctx.value_type(operand));
    }
    out.push_str(") -> (");
    for (i, &r) in results.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "{}", ctx.value_type(r));
    }
    out.push_str(")\n");
}

fn print_block(
    ctx: &IrContext,
    block: BlockId,
    block_index: usize,
    state: &mut PrinterState,
    level: usize,
    out: &mut String,
) {
    indent(out, level.saturating_sub(1));
    let _ = write!(out, "^bb{block_index}(");
    for (i, &arg) in ctx.block_args(block).iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let n = state.name_of(arg);
        let _ = write!(out, "%{n}: {}", ctx.value_type(arg));
    }
    out.push_str("):\n");
    for &op in ctx.block_ops(block) {
        print_op_rec(ctx, op, state, level, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attributes::{AttrMap, Attribute};
    use crate::builder::{OpBuilder, OpSpec};
    use crate::types::Type;

    #[test]
    fn prints_flat_module() {
        let mut ctx = IrContext::new();
        let module = ctx.create_op("builtin.module", vec![], vec![], AttrMap::new(), 1);
        let body = ctx.add_block(ctx.op_region(module, 0), vec![]);
        let mut b = OpBuilder::at_end(&mut ctx, body);
        let c = b.insert_value(
            OpSpec::new("arith.constant")
                .results([Type::f32()])
                .attr("value", Attribute::f32(0.12345)),
        );
        b.insert(OpSpec::new("func.return").operands([c]));
        let text = print_op(&ctx, module);
        assert!(text.contains("\"builtin.module\"()"));
        assert!(text.contains("%0 = \"arith.constant\"()"));
        assert!(text.contains("\"func.return\"(%0)"));
        assert!(text.contains(": (f32) -> ()"));
    }

    #[test]
    fn prints_block_arguments_and_nested_regions() {
        let mut ctx = IrContext::new();
        let module = ctx.create_op("builtin.module", vec![], vec![], AttrMap::new(), 1);
        let body = ctx.add_block(ctx.op_region(module, 0), vec![]);
        let mut b = OpBuilder::at_end(&mut ctx, body);
        let apply = b.insert(
            OpSpec::new("stencil.apply").results([Type::tensor(vec![4], Type::f32())]).regions(1),
        );
        let blk = ctx.add_block(ctx.op_region(apply, 0), vec![Type::f32()]);
        let arg = ctx.block_args(blk)[0];
        let mut b = OpBuilder::at_end(&mut ctx, blk);
        b.insert(OpSpec::new("stencil.return").operands([arg]));
        let text = print_op(&ctx, module);
        assert!(text.contains("^bb0(%1: f32):"));
        assert!(text.contains("\"stencil.return\"(%1)"));
    }

    #[test]
    fn operand_and_result_names_are_stable() {
        let mut ctx = IrContext::new();
        let module = ctx.create_op("builtin.module", vec![], vec![], AttrMap::new(), 1);
        let body = ctx.add_block(ctx.op_region(module, 0), vec![]);
        let mut b = OpBuilder::at_end(&mut ctx, body);
        let a = b.insert_value(OpSpec::new("arith.constant").results([Type::f32()]));
        let c = b.insert_value(OpSpec::new("arith.constant").results([Type::f32()]));
        b.insert_value(OpSpec::new("arith.addf").operands([a, c]).results([Type::f32()]));
        let text = print_op(&ctx, module);
        // Two constants then the add using both.
        assert!(text.contains("\"arith.addf\"(%0, %1)"));
        assert!(text.contains("%2 = \"arith.addf\""));
    }
}
