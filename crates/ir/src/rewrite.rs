//! Pattern rewriting: [`RewritePattern`] and a greedy rewrite driver.
//!
//! This mirrors MLIR's greedy pattern rewriter at the granularity the
//! pipeline needs: patterns match a root operation by name, perform an
//! arbitrary rewrite through the [`Rewriter`] facade and report whether
//! they changed anything.  The driver iterates to a fixed point (bounded to
//! protect against non-converging pattern sets).

use crate::builder::{OpBuilder, OpSpec};
use crate::ir::{IrContext, IrError, IrResult, OpId, ValueId};

/// A rewrite pattern anchored on operations with a specific name.
pub trait RewritePattern {
    /// Human-readable pattern name (for debugging and statistics).
    fn name(&self) -> &str;

    /// Operation name this pattern anchors on, or `None` to try every op.
    fn root_op(&self) -> Option<&str> {
        None
    }

    /// Attempts to match and rewrite `op`.  Returns `Ok(true)` if the IR was
    /// changed, `Ok(false)` if the pattern did not apply.
    fn match_and_rewrite(&self, rewriter: &mut Rewriter<'_>, op: OpId) -> IrResult<bool>;
}

/// Mutation facade handed to patterns.
///
/// It wraps the [`IrContext`] and provides the common rewrite idioms
/// (replace an op with values, erase an op, build new ops before the root).
pub struct Rewriter<'a> {
    ctx: &'a mut IrContext,
}

impl<'a> Rewriter<'a> {
    /// Creates a rewriter over a context.
    pub fn new(ctx: &'a mut IrContext) -> Self {
        Self { ctx }
    }

    /// Shared access to the context.
    pub fn ctx(&self) -> &IrContext {
        self.ctx
    }

    /// Mutable access to the context.
    pub fn ctx_mut(&mut self) -> &mut IrContext {
        self.ctx
    }

    /// Builder inserting immediately before `op`.
    pub fn builder_before(&mut self, op: OpId) -> OpBuilder<'_> {
        OpBuilder::before(self.ctx, op)
    }

    /// Builder inserting immediately after `op`.
    pub fn builder_after(&mut self, op: OpId) -> OpBuilder<'_> {
        OpBuilder::after(self.ctx, op)
    }

    /// Creates an op right before `root` from a spec.
    pub fn insert_before(&mut self, root: OpId, spec: OpSpec) -> OpId {
        self.builder_before(root).insert(spec)
    }

    /// Replaces all uses of `op`'s results with `values` and erases `op`.
    ///
    /// # Errors
    /// Returns an error if the number of replacement values does not match
    /// the number of results.
    pub fn replace_op(&mut self, op: OpId, values: &[ValueId]) -> IrResult<()> {
        let results = self.ctx.results(op).to_vec();
        if results.len() != values.len() {
            return Err(IrError::new(format!(
                "replace_op: op {} has {} results but {} replacement values were given",
                self.ctx.op_name(op),
                results.len(),
                values.len()
            )));
        }
        for (old, new) in results.iter().zip(values) {
            self.ctx.replace_all_uses(*old, *new);
        }
        self.ctx.erase_op(op);
        Ok(())
    }

    /// Erases an op that has no remaining uses of its results.
    ///
    /// # Errors
    /// Returns an error if any result still has uses.
    pub fn erase_op(&mut self, op: OpId) -> IrResult<()> {
        for &r in self.ctx.results(op) {
            if self.ctx.has_uses(r) {
                return Err(IrError::new(format!(
                    "erase_op: result of {} still has uses",
                    self.ctx.op_name(op)
                )));
            }
        }
        self.ctx.erase_op(op);
        Ok(())
    }

    /// Replaces all uses of one value with another.
    pub fn replace_all_uses(&mut self, old: ValueId, new: ValueId) {
        self.ctx.replace_all_uses(old, new);
    }
}

/// Outcome of a greedy rewrite.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RewriteOutcome {
    /// Number of successful pattern applications.
    pub applications: usize,
    /// Whether the driver reached a fixed point (true) or hit the iteration
    /// bound (false).
    pub converged: bool,
}

/// Maximum number of sweeps over the IR before giving up.
const MAX_ITERATIONS: usize = 64;

/// Applies `patterns` greedily to every op nested under `root` until no
/// pattern applies anymore.
pub fn apply_patterns_greedy(
    ctx: &mut IrContext,
    root: OpId,
    patterns: &[Box<dyn RewritePattern>],
) -> IrResult<RewriteOutcome> {
    let mut applications = 0;
    for _ in 0..MAX_ITERATIONS {
        let mut changed = false;
        let ops = ctx.walk(root);
        for op in ops {
            if !ctx.op_is_live(op) {
                continue;
            }
            for pattern in patterns {
                if let Some(anchor) = pattern.root_op() {
                    if ctx.op_name(op) != anchor {
                        continue;
                    }
                }
                if !ctx.op_is_live(op) {
                    break;
                }
                let mut rewriter = Rewriter::new(ctx);
                if pattern.match_and_rewrite(&mut rewriter, op)? {
                    applications += 1;
                    changed = true;
                    break;
                }
            }
        }
        if !changed {
            return Ok(RewriteOutcome { applications, converged: true });
        }
    }
    Ok(RewriteOutcome { applications, converged: false })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attributes::{AttrMap, Attribute};
    use crate::builder::{OpBuilder, OpSpec};
    use crate::types::Type;

    /// Folds `arith.addf(x, x)` into `arith.mulf(x, 2.0)`.
    struct AddSelfToMul;

    impl RewritePattern for AddSelfToMul {
        fn name(&self) -> &str {
            "add-self-to-mul"
        }

        fn root_op(&self) -> Option<&str> {
            Some("arith.addf")
        }

        fn match_and_rewrite(&self, rewriter: &mut Rewriter<'_>, op: OpId) -> IrResult<bool> {
            let operands = rewriter.ctx().operands(op).to_vec();
            if operands.len() != 2 || operands[0] != operands[1] {
                return Ok(false);
            }
            let ty = rewriter.ctx().value_type(operands[0]).clone();
            let mut b = rewriter.builder_before(op);
            let two = b.insert_value(
                OpSpec::new("arith.constant")
                    .results([ty.clone()])
                    .attr("value", Attribute::f32(2.0)),
            );
            let mul = b
                .insert_value(OpSpec::new("arith.mulf").operands([operands[0], two]).results([ty]));
            rewriter.replace_op(op, &[mul])?;
            Ok(true)
        }
    }

    fn build_add_chain(ctx: &mut IrContext) -> OpId {
        let module = ctx.create_op("builtin.module", vec![], vec![], AttrMap::new(), 1);
        let body = ctx.add_block(ctx.op_region(module, 0), vec![]);
        let mut b = OpBuilder::at_end(ctx, body);
        let c = b.insert_value(OpSpec::new("arith.constant").results([Type::f32()]));
        let add = b.insert_value(OpSpec::new("arith.addf").operands([c, c]).results([Type::f32()]));
        b.insert(OpSpec::new("func.return").operands([add]));
        module
    }

    #[test]
    fn greedy_rewrite_applies_pattern() {
        let mut ctx = IrContext::new();
        let module = build_add_chain(&mut ctx);
        let patterns: Vec<Box<dyn RewritePattern>> = vec![Box::new(AddSelfToMul)];
        let outcome = apply_patterns_greedy(&mut ctx, module, &patterns).unwrap();
        assert_eq!(outcome.applications, 1);
        assert!(outcome.converged);
        assert!(ctx.walk_named(module, "arith.addf").is_empty());
        assert_eq!(ctx.walk_named(module, "arith.mulf").len(), 1);
    }

    #[test]
    fn rewrite_is_idempotent_after_convergence() {
        let mut ctx = IrContext::new();
        let module = build_add_chain(&mut ctx);
        let patterns: Vec<Box<dyn RewritePattern>> = vec![Box::new(AddSelfToMul)];
        apply_patterns_greedy(&mut ctx, module, &patterns).unwrap();
        let outcome = apply_patterns_greedy(&mut ctx, module, &patterns).unwrap();
        assert_eq!(outcome.applications, 0);
        assert!(outcome.converged);
    }

    #[test]
    fn replace_op_rejects_arity_mismatch() {
        let mut ctx = IrContext::new();
        let module = build_add_chain(&mut ctx);
        let add = ctx.walk_named(module, "arith.addf")[0];
        let mut rewriter = Rewriter::new(&mut ctx);
        assert!(rewriter.replace_op(add, &[]).is_err());
    }

    #[test]
    fn erase_op_rejects_live_uses() {
        let mut ctx = IrContext::new();
        let module = build_add_chain(&mut ctx);
        let constant = ctx.walk_named(module, "arith.constant")[0];
        let mut rewriter = Rewriter::new(&mut ctx);
        assert!(rewriter.erase_op(constant).is_err());
        // The return's operand (the add) keeps the add alive; the constant is
        // used by the add, so both must fail to erase.
        let add = ctx.walk_named(module, "arith.addf")[0];
        let mut rewriter = Rewriter::new(&mut ctx);
        assert!(rewriter.erase_op(add).is_err());
    }
}
