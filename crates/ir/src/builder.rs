//! Operation builder with an insertion point.
//!
//! [`OpBuilder`] wraps a mutable [`IrContext`] plus an insertion point and
//! offers convenience methods for creating operations in place.  Dialect
//! crates build their typed helpers (`arith::addf`, `stencil::apply`, ...)
//! on top of it.

use crate::attributes::{AttrMap, Attribute};
use crate::ir::{BlockId, IrContext, OpId, RegionId, ValueId};
use crate::types::Type;

/// Where newly-built operations are inserted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InsertPoint {
    /// Target block.
    pub block: BlockId,
    /// Index within the block at which the next op is inserted.
    pub index: usize,
}

/// A specification for building one operation.
#[derive(Debug, Clone, Default)]
pub struct OpSpec {
    /// Fully-qualified operation name.
    pub name: String,
    /// SSA operands.
    pub operands: Vec<ValueId>,
    /// Result types.
    pub result_types: Vec<Type>,
    /// Attributes.
    pub attrs: Vec<(String, Attribute)>,
    /// Number of (initially empty) regions to create.
    pub num_regions: usize,
}

impl OpSpec {
    /// Starts a spec for the given operation name.
    pub fn new(name: impl Into<String>) -> Self {
        Self { name: name.into(), ..Default::default() }
    }

    /// Adds operands.
    pub fn operands(mut self, operands: impl IntoIterator<Item = ValueId>) -> Self {
        self.operands.extend(operands);
        self
    }

    /// Adds result types.
    pub fn results(mut self, types: impl IntoIterator<Item = Type>) -> Self {
        self.result_types.extend(types);
        self
    }

    /// Adds one attribute.
    pub fn attr(mut self, name: impl Into<String>, attr: Attribute) -> Self {
        self.attrs.push((name.into(), attr));
        self
    }

    /// Requests `n` empty regions.
    pub fn regions(mut self, n: usize) -> Self {
        self.num_regions = n;
        self
    }
}

/// A builder that creates operations at an insertion point.
#[derive(Debug)]
pub struct OpBuilder<'ctx> {
    ctx: &'ctx mut IrContext,
    ip: Option<InsertPoint>,
}

impl<'ctx> OpBuilder<'ctx> {
    /// Creates a builder with no insertion point (ops are left detached).
    pub fn new(ctx: &'ctx mut IrContext) -> Self {
        Self { ctx, ip: None }
    }

    /// Creates a builder inserting at the end of `block`.
    pub fn at_end(ctx: &'ctx mut IrContext, block: BlockId) -> Self {
        let index = ctx.block_ops(block).len();
        Self { ctx, ip: Some(InsertPoint { block, index }) }
    }

    /// Creates a builder inserting at the start of `block`.
    pub fn at_start(ctx: &'ctx mut IrContext, block: BlockId) -> Self {
        Self { ctx, ip: Some(InsertPoint { block, index: 0 }) }
    }

    /// Creates a builder inserting right before `op`.
    pub fn before(ctx: &'ctx mut IrContext, op: OpId) -> Self {
        let block = ctx.parent_block(op).expect("op must be attached to a block");
        let index = ctx.op_index_in_block(op).expect("op must be in its block");
        Self { ctx, ip: Some(InsertPoint { block, index }) }
    }

    /// Creates a builder inserting right after `op`.
    pub fn after(ctx: &'ctx mut IrContext, op: OpId) -> Self {
        let block = ctx.parent_block(op).expect("op must be attached to a block");
        let index = ctx.op_index_in_block(op).expect("op must be in its block") + 1;
        Self { ctx, ip: Some(InsertPoint { block, index }) }
    }

    /// Underlying context.
    pub fn ctx(&mut self) -> &mut IrContext {
        self.ctx
    }

    /// Underlying context (shared).
    pub fn ctx_ref(&self) -> &IrContext {
        self.ctx
    }

    /// Current insertion point.
    pub fn insert_point(&self) -> Option<InsertPoint> {
        self.ip
    }

    /// Repositions the builder to the end of `block`.
    pub fn set_insertion_point_to_end(&mut self, block: BlockId) {
        let index = self.ctx.block_ops(block).len();
        self.ip = Some(InsertPoint { block, index });
    }

    /// Repositions the builder to the start of `block`.
    pub fn set_insertion_point_to_start(&mut self, block: BlockId) {
        self.ip = Some(InsertPoint { block, index: 0 });
    }

    /// Repositions the builder right before `op`.
    pub fn set_insertion_point_before(&mut self, op: OpId) {
        let block = self.ctx.parent_block(op).expect("op must be attached");
        let index = self.ctx.op_index_in_block(op).expect("op must be in its block");
        self.ip = Some(InsertPoint { block, index });
    }

    /// Builds and inserts an operation according to `spec`.
    pub fn insert(&mut self, spec: OpSpec) -> OpId {
        let mut attrs = AttrMap::new();
        for (k, v) in spec.attrs {
            attrs.insert(k, v);
        }
        let op = self.ctx.create_op(
            spec.name,
            spec.operands,
            spec.result_types,
            attrs,
            spec.num_regions,
        );
        if let Some(ip) = &mut self.ip {
            self.ctx.insert_op(ip.block, ip.index, op);
            ip.index += 1;
        }
        op
    }

    /// Builds an op and returns its only result value.
    ///
    /// # Panics
    /// Panics if the op does not produce exactly one result.
    pub fn insert_value(&mut self, spec: OpSpec) -> ValueId {
        let op = self.insert(spec);
        assert_eq!(
            self.ctx.results(op).len(),
            1,
            "insert_value requires exactly one result, op {} has {}",
            self.ctx.op_name(op),
            self.ctx.results(op).len()
        );
        self.ctx.result(op, 0)
    }

    /// Adds a block to a region and returns it.
    pub fn add_block(&mut self, region: RegionId, arg_types: Vec<Type>) -> BlockId {
        self.ctx.add_block(region, arg_types)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_inserts_in_order() {
        let mut ctx = IrContext::new();
        let module = ctx.create_op("builtin.module", vec![], vec![], AttrMap::new(), 1);
        let body = ctx.add_block(ctx.op_region(module, 0), vec![]);
        let mut b = OpBuilder::at_end(&mut ctx, body);
        let c0 = b.insert(OpSpec::new("arith.constant").results([Type::f32()]));
        let c1 = b.insert(OpSpec::new("arith.constant").results([Type::f32()]));
        assert_eq!(ctx.block_ops(body), &[c0, c1]);
    }

    #[test]
    fn builder_before_and_after() {
        let mut ctx = IrContext::new();
        let module = ctx.create_op("builtin.module", vec![], vec![], AttrMap::new(), 1);
        let body = ctx.add_block(ctx.op_region(module, 0), vec![]);
        let mut b = OpBuilder::at_end(&mut ctx, body);
        let first = b.insert(OpSpec::new("t.first"));
        let last = b.insert(OpSpec::new("t.last"));
        let mut b = OpBuilder::before(&mut ctx, last);
        let mid = b.insert(OpSpec::new("t.mid"));
        assert_eq!(ctx.block_ops(body), &[first, mid, last]);
        let mut b = OpBuilder::after(&mut ctx, first);
        let second = b.insert(OpSpec::new("t.second"));
        assert_eq!(ctx.block_ops(body), &[first, second, mid, last]);
    }

    #[test]
    fn insert_value_returns_single_result() {
        let mut ctx = IrContext::new();
        let module = ctx.create_op("builtin.module", vec![], vec![], AttrMap::new(), 1);
        let body = ctx.add_block(ctx.op_region(module, 0), vec![]);
        let mut b = OpBuilder::at_end(&mut ctx, body);
        let v = b.insert_value(
            OpSpec::new("arith.constant").results([Type::f32()]).attr("value", Attribute::f32(1.0)),
        );
        assert_eq!(ctx.value_type(v), &Type::f32());
    }

    #[test]
    fn detached_builder_leaves_op_unattached() {
        let mut ctx = IrContext::new();
        let mut b = OpBuilder::new(&mut ctx);
        let op = b.insert(OpSpec::new("t.detached"));
        assert_eq!(ctx.parent_block(op), None);
    }

    #[test]
    fn spec_with_regions() {
        let mut ctx = IrContext::new();
        let mut b = OpBuilder::new(&mut ctx);
        let op = b.insert(OpSpec::new("scf.for").regions(1));
        assert_eq!(ctx.op_regions(op).len(), 1);
    }
}
