//! Structural IR verification plus a registry for dialect op verifiers.
//!
//! The structural verifier checks invariants that must hold for any IR
//! (parent links are consistent, operands refer to live values, SSA values
//! are defined before use within a block).  Dialect crates register
//! per-operation verifiers in a [`DialectRegistry`] which the
//! [`crate::PassManager`] can run after each pass.

use std::collections::HashMap;
use std::collections::HashSet;

use crate::ir::{IrContext, OpId, ValueDef, ValueId};

/// A dialect-provided verifier for one operation kind.
pub type OpVerifier = fn(&IrContext, OpId) -> Result<(), String>;

/// Registry mapping operation names to their verifiers.
#[derive(Default, Clone)]
pub struct DialectRegistry {
    verifiers: HashMap<String, OpVerifier>,
    dialects: HashSet<String>,
}

impl std::fmt::Debug for DialectRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DialectRegistry")
            .field("dialects", &self.dialects)
            .field("num_verifiers", &self.verifiers.len())
            .finish()
    }
}

impl DialectRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares a dialect as known (op names with unknown dialects are
    /// reported by [`verify`] when `strict_dialects` is enabled).
    pub fn register_dialect(&mut self, name: impl Into<String>) {
        self.dialects.insert(name.into());
    }

    /// Registers a verifier for the given op name.
    pub fn register_op_verifier(&mut self, op_name: impl Into<String>, verifier: OpVerifier) {
        self.verifiers.insert(op_name.into(), verifier);
    }

    /// Returns the verifier for an op name, if any.
    pub fn verifier_for(&self, op_name: &str) -> Option<&OpVerifier> {
        self.verifiers.get(op_name)
    }

    /// Returns true if the dialect has been registered.
    pub fn has_dialect(&self, name: &str) -> bool {
        self.dialects.contains(name)
    }

    /// Registered dialect names, sorted.
    pub fn dialect_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.dialects.iter().map(String::as_str).collect();
        names.sort_unstable();
        names
    }
}

/// A verification failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    /// The offending operation.
    pub op: OpId,
    /// The operation name.
    pub op_name: String,
    /// Error description.
    pub message: String,
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} ({}): {}", self.op, self.op_name, self.message)
    }
}

impl std::error::Error for VerifyError {}

/// Verifies structural invariants of the IR rooted at `root` and runs any
/// registered dialect verifiers.  Returns all failures found.
pub fn verify(ctx: &IrContext, root: OpId, registry: &DialectRegistry) -> Vec<VerifyError> {
    let mut errors = Vec::new();
    let mut defined: HashSet<ValueId> = HashSet::new();
    let mut scope_log: Vec<ValueId> = Vec::new();
    verify_op(ctx, root, registry, &mut defined, &mut scope_log, &mut errors);
    errors
}

/// Convenience wrapper returning `Err` with a formatted message if any
/// verification error is found.
pub fn verify_or_error(
    ctx: &IrContext,
    root: OpId,
    registry: &DialectRegistry,
) -> Result<(), String> {
    let errors = verify(ctx, root, registry);
    if errors.is_empty() {
        Ok(())
    } else {
        let mut msg = format!("{} verification error(s):", errors.len());
        for e in &errors {
            msg.push_str("\n  - ");
            msg.push_str(&e.to_string());
        }
        Err(msg)
    }
}

fn error(errors: &mut Vec<VerifyError>, ctx: &IrContext, op: OpId, message: impl Into<String>) {
    errors.push(VerifyError { op, op_name: ctx.op_name(op).to_string(), message: message.into() });
}

fn verify_op(
    ctx: &IrContext,
    op: OpId,
    registry: &DialectRegistry,
    defined: &mut HashSet<ValueId>,
    scope_log: &mut Vec<ValueId>,
    errors: &mut Vec<VerifyError>,
) {
    if !ctx.op_is_live(op) {
        error(errors, ctx, op, "operation has been erased but is still referenced");
        return;
    }
    // Operation name must be dialect-qualified.
    let name = ctx.op_name(op);
    if !name.contains('.') {
        error(errors, ctx, op, "operation name is not dialect qualified");
    }
    // Operands must be live and (for values defined in the same block chain)
    // already defined.
    for (idx, &operand) in ctx.operands(op).iter().enumerate() {
        if !ctx.value_is_live(operand) {
            error(errors, ctx, op, format!("operand #{idx} refers to an erased value"));
            continue;
        }
        match ctx.value_def(operand) {
            ValueDef::OpResult { op: def_op, .. } => {
                // The defining op must still be live.
                if !ctx.op_is_live(def_op) {
                    error(
                        errors,
                        ctx,
                        op,
                        format!("operand #{idx} is a result of erased {def_op}"),
                    );
                } else if !defined.contains(&operand) {
                    error(
                        errors,
                        ctx,
                        op,
                        format!("operand #{idx} used before its definition ({def_op})"),
                    );
                }
            }
            ValueDef::BlockArg { .. } => {
                if !defined.contains(&operand) {
                    error(
                        errors,
                        ctx,
                        op,
                        format!("operand #{idx} uses a block argument from a non-enclosing block"),
                    );
                }
            }
        }
    }
    // Parent/child link consistency for regions and blocks.  Values
    // defined inside a region (block arguments and nested op results) go
    // out of scope when the region ends: nested regions may read outward,
    // but sibling regions must not see each other's values.
    for &region in ctx.op_regions(op) {
        if ctx.region_parent_op(region) != Some(op) {
            error(errors, ctx, op, "region parent link is inconsistent");
        }
        let scope_mark = scope_log.len();
        for &block in ctx.region_blocks(region) {
            if ctx.parent_region(block) != Some(region) {
                error(errors, ctx, op, "block parent link is inconsistent");
            }
            for &arg in ctx.block_args(block) {
                if defined.insert(arg) {
                    scope_log.push(arg);
                }
            }
            for &nested in ctx.block_ops(block) {
                if ctx.parent_block(nested) != Some(block) {
                    error(errors, ctx, nested, "op parent link is inconsistent");
                }
                verify_op(ctx, nested, registry, defined, scope_log, errors);
            }
        }
        for value in scope_log.drain(scope_mark..) {
            defined.remove(&value);
        }
    }
    // Results become defined after the op, in the *enclosing* scope (they
    // stay visible to later siblings until the parent region ends).
    for &r in ctx.results(op) {
        if defined.insert(r) {
            scope_log.push(r);
        }
    }
    // Dialect-specific verification.
    if let Some(v) = registry.verifier_for(name) {
        if let Err(msg) = v(ctx, op) {
            error(errors, ctx, op, msg);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attributes::AttrMap;
    use crate::types::Type;

    fn module_with_block(ctx: &mut IrContext) -> (OpId, crate::ir::BlockId) {
        let module = ctx.create_op("builtin.module", vec![], vec![], AttrMap::new(), 1);
        let body = ctx.add_block(ctx.op_region(module, 0), vec![]);
        (module, body)
    }

    #[test]
    fn valid_ir_verifies() {
        let mut ctx = IrContext::new();
        let (module, body) = module_with_block(&mut ctx);
        let c = ctx.create_op("arith.constant", vec![], vec![Type::f32()], AttrMap::new(), 0);
        ctx.append_op(body, c);
        let v = ctx.result(c, 0);
        let add = ctx.create_op("arith.addf", vec![v, v], vec![Type::f32()], AttrMap::new(), 0);
        ctx.append_op(body, add);
        assert!(verify(&ctx, module, &DialectRegistry::new()).is_empty());
    }

    #[test]
    fn use_before_def_is_reported() {
        let mut ctx = IrContext::new();
        let (module, body) = module_with_block(&mut ctx);
        let c = ctx.create_op("arith.constant", vec![], vec![Type::f32()], AttrMap::new(), 0);
        let v = ctx.result(c, 0);
        let add = ctx.create_op("arith.addf", vec![v, v], vec![Type::f32()], AttrMap::new(), 0);
        // Insert the use *before* the definition.
        ctx.append_op(body, add);
        ctx.append_op(body, c);
        let errors = verify(&ctx, module, &DialectRegistry::new());
        assert!(errors.iter().any(|e| e.message.contains("before its definition")));
    }

    #[test]
    fn erased_operand_is_reported() {
        let mut ctx = IrContext::new();
        let (module, body) = module_with_block(&mut ctx);
        let c = ctx.create_op("arith.constant", vec![], vec![Type::f32()], AttrMap::new(), 0);
        ctx.append_op(body, c);
        let v = ctx.result(c, 0);
        let add = ctx.create_op("arith.addf", vec![v, v], vec![Type::f32()], AttrMap::new(), 0);
        ctx.append_op(body, add);
        ctx.erase_op(c);
        let errors = verify(&ctx, module, &DialectRegistry::new());
        assert!(!errors.is_empty());
    }

    #[test]
    fn unqualified_name_is_reported() {
        let mut ctx = IrContext::new();
        let (module, body) = module_with_block(&mut ctx);
        let bad = ctx.create_op("unqualified", vec![], vec![], AttrMap::new(), 0);
        ctx.append_op(body, bad);
        let errors = verify(&ctx, module, &DialectRegistry::new());
        assert!(errors.iter().any(|e| e.message.contains("not dialect qualified")));
    }

    #[test]
    fn dialect_verifier_runs() {
        fn needs_value_attr(ctx: &IrContext, op: OpId) -> Result<(), String> {
            if ctx.attr(op, "value").is_none() {
                return Err("missing `value` attribute".to_string());
            }
            Ok(())
        }
        let mut registry = DialectRegistry::new();
        registry.register_dialect("arith");
        registry.register_op_verifier("arith.constant", needs_value_attr);
        assert!(registry.has_dialect("arith"));
        assert!(!registry.has_dialect("scf"));

        let mut ctx = IrContext::new();
        let (module, body) = module_with_block(&mut ctx);
        let c = ctx.create_op("arith.constant", vec![], vec![Type::f32()], AttrMap::new(), 0);
        ctx.append_op(body, c);
        let errors = verify(&ctx, module, &registry);
        assert_eq!(errors.len(), 1);
        assert!(errors[0].message.contains("missing `value`"));
        assert!(verify_or_error(&ctx, module, &registry).is_err());
    }

    /// Table-driven negative-path coverage: every structural rejection
    /// class must surface as a typed [`VerifyError`] naming the problem —
    /// no panics, no silent acceptance.  Classes marked (new) had no
    /// dedicated test before this table existed.
    #[test]
    fn every_structural_rejection_class_is_reported() {
        type Build = fn(&mut IrContext) -> OpId;
        let cases: [(&str, Build, &str); 4] = [
            (
                "use before definition",
                |ctx| {
                    let (module, body) = {
                        let m = ctx.create_op("builtin.module", vec![], vec![], AttrMap::new(), 1);
                        (m, ctx.add_block(ctx.op_region(m, 0), vec![]))
                    };
                    let c = ctx.create_op(
                        "arith.constant",
                        vec![],
                        vec![Type::f32()],
                        AttrMap::new(),
                        0,
                    );
                    let v = ctx.result(c, 0);
                    let neg =
                        ctx.create_op("arith.negf", vec![v], vec![Type::f32()], AttrMap::new(), 0);
                    ctx.append_op(body, neg);
                    ctx.append_op(body, c);
                    module
                },
                "before its definition",
            ),
            (
                "operand is a result of an erased op",
                |ctx| {
                    let module = ctx.create_op("builtin.module", vec![], vec![], AttrMap::new(), 1);
                    let body = ctx.add_block(ctx.op_region(module, 0), vec![]);
                    let c = ctx.create_op(
                        "arith.constant",
                        vec![],
                        vec![Type::f32()],
                        AttrMap::new(),
                        0,
                    );
                    ctx.append_op(body, c);
                    let v = ctx.result(c, 0);
                    let neg =
                        ctx.create_op("arith.negf", vec![v], vec![Type::f32()], AttrMap::new(), 0);
                    ctx.append_op(body, neg);
                    ctx.erase_op(c);
                    module
                },
                "erased",
            ),
            (
                "block argument used outside its enclosing block (new)",
                |ctx| {
                    let module = ctx.create_op("builtin.module", vec![], vec![], AttrMap::new(), 1);
                    let body = ctx.add_block(ctx.op_region(module, 0), vec![]);
                    // A block argument belonging to one function...
                    let func_a = ctx.create_op("func.func", vec![], vec![], AttrMap::new(), 1);
                    let block_a = ctx.add_block(ctx.op_region(func_a, 0), vec![Type::f32()]);
                    let foreign_arg = ctx.block_args(block_a)[0];
                    ctx.append_op(body, func_a);
                    // ... is referenced from a sibling function's body.
                    let func_b = ctx.create_op("func.func", vec![], vec![], AttrMap::new(), 1);
                    let block_b = ctx.add_block(ctx.op_region(func_b, 0), vec![]);
                    let escape =
                        ctx.create_op("func.return", vec![foreign_arg], vec![], AttrMap::new(), 0);
                    ctx.append_op(block_b, escape);
                    ctx.append_op(body, func_b);
                    module
                },
                "non-enclosing block",
            ),
            (
                "operation name without a dialect prefix",
                |ctx| {
                    let module = ctx.create_op("builtin.module", vec![], vec![], AttrMap::new(), 1);
                    let body = ctx.add_block(ctx.op_region(module, 0), vec![]);
                    let bad = ctx.create_op("anonymous", vec![], vec![], AttrMap::new(), 0);
                    ctx.append_op(body, bad);
                    module
                },
                "not dialect qualified",
            ),
        ];
        for (label, build, needle) in cases {
            let mut ctx = IrContext::new();
            let module = build(&mut ctx);
            let errors = verify(&ctx, module, &DialectRegistry::new());
            assert!(!errors.is_empty(), "{label}: malformed IR was accepted");
            assert!(
                errors.iter().any(|e| e.message.contains(needle)),
                "{label}: diagnostics {errors:?} do not mention {needle:?}"
            );
        }
    }

    #[test]
    fn block_args_are_visible_in_nested_ops() {
        let mut ctx = IrContext::new();
        let (module, body) = module_with_block(&mut ctx);
        let func = ctx.create_op("func.func", vec![], vec![], AttrMap::new(), 1);
        let fb = ctx.add_block(ctx.op_region(func, 0), vec![Type::f32()]);
        let arg = ctx.block_args(fb)[0];
        let use_op = ctx.create_op("func.return", vec![arg], vec![], AttrMap::new(), 0);
        ctx.append_op(fb, use_op);
        ctx.append_op(body, func);
        assert!(verify(&ctx, module, &DialectRegistry::new()).is_empty());
    }
}
