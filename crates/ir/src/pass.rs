//! The pass framework: [`Pass`], [`PassManager`] and pass pipelines.
//!
//! Passes transform a module in place.  The [`PassManager`] runs an ordered
//! list of passes, optionally verifying the IR after each one (mirroring
//! `mlir-opt --verify-each`), and records simple statistics that the
//! benchmark harness reports.

use std::fmt;
use std::time::Instant;

use crate::ir::{IrContext, OpId};
use crate::verifier::{verify_or_error, DialectRegistry};

/// Error produced by a failing pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PassError {
    /// Name of the failing pass.
    pub pass: String,
    /// Error description.
    pub message: String,
    /// Optional stable machine-readable code (e.g. `"non-linear"`), so
    /// harnesses can classify expected rejections without string-matching
    /// diagnostic text.
    pub code: Option<String>,
}

impl PassError {
    /// Creates a new pass error.
    pub fn new(pass: impl Into<String>, message: impl Into<String>) -> Self {
        Self { pass: pass.into(), message: message.into(), code: None }
    }

    /// Attaches a machine-readable code.
    #[must_use]
    pub fn with_code(mut self, code: impl Into<String>) -> Self {
        self.code = Some(code.into());
        self
    }
}

impl fmt::Display for PassError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pass '{}' failed: {}", self.pass, self.message)
    }
}

impl std::error::Error for PassError {}

/// Result alias for passes.
pub type PassResult = Result<(), PassError>;

/// A transformation applied to a module.
pub trait Pass {
    /// Unique, kebab-case pass name (e.g. `"convert-stencil-to-csl-stencil"`).
    fn name(&self) -> &str;

    /// Runs the pass on the module rooted at `module`.
    fn run(&self, ctx: &mut IrContext, module: OpId) -> PassResult;
}

/// Statistics about one executed pass.
#[derive(Debug, Clone, PartialEq)]
pub struct PassStatistics {
    /// Pass name.
    pub name: String,
    /// Wall-clock duration in seconds.
    pub seconds: f64,
    /// Number of live operations after the pass.
    pub ops_after: usize,
}

/// Runs a sequence of passes over a module.
pub struct PassManager {
    passes: Vec<Box<dyn Pass>>,
    registry: DialectRegistry,
    verify_each: bool,
    statistics: Vec<PassStatistics>,
}

impl fmt::Debug for PassManager {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PassManager")
            .field("passes", &self.pass_names())
            .field("verify_each", &self.verify_each)
            .finish()
    }
}

impl Default for PassManager {
    fn default() -> Self {
        Self::new()
    }
}

impl PassManager {
    /// Creates an empty pass manager with verification disabled.
    pub fn new() -> Self {
        Self {
            passes: Vec::new(),
            registry: DialectRegistry::new(),
            verify_each: false,
            statistics: Vec::new(),
        }
    }

    /// Enables or disables IR verification after every pass.
    pub fn verify_each(mut self, enabled: bool) -> Self {
        self.verify_each = enabled;
        self
    }

    /// Sets the dialect registry used for verification.
    pub fn with_registry(mut self, registry: DialectRegistry) -> Self {
        self.registry = registry;
        self
    }

    /// Appends a pass.
    pub fn add_pass(&mut self, pass: Box<dyn Pass>) -> &mut Self {
        self.passes.push(pass);
        self
    }

    /// Appends a pass (builder style).
    pub fn with_pass(mut self, pass: Box<dyn Pass>) -> Self {
        self.passes.push(pass);
        self
    }

    /// Names of the registered passes in execution order.
    pub fn pass_names(&self) -> Vec<&str> {
        self.passes.iter().map(|p| p.name()).collect()
    }

    /// Number of registered passes.
    pub fn len(&self) -> usize {
        self.passes.len()
    }

    /// True if no passes are registered.
    pub fn is_empty(&self) -> bool {
        self.passes.is_empty()
    }

    /// Statistics collected by the last [`PassManager::run`].
    pub fn statistics(&self) -> &[PassStatistics] {
        &self.statistics
    }

    /// Runs all passes in order.  Stops and returns the first failure.
    pub fn run(&mut self, ctx: &mut IrContext, module: OpId) -> PassResult {
        self.run_with(ctx, module, &mut |_, _, _| Ok(()))
    }

    /// Runs all passes in order, invoking `after_each` with the pass name
    /// and the module after every pass (after its verification, when
    /// enabled).  An `Err` from the callback aborts the pipeline and is
    /// attributed to that pass.  This is what turns external tooling —
    /// e.g. the per-stage print→parse→print conformance check — into a
    /// first-class pipeline observer instead of a re-implementation of
    /// the pass sequence.
    pub fn run_with(
        &mut self,
        ctx: &mut IrContext,
        module: OpId,
        after_each: &mut dyn FnMut(&str, &IrContext, OpId) -> Result<(), String>,
    ) -> PassResult {
        self.statistics.clear();
        for pass in &self.passes {
            let start = Instant::now();
            pass.run(ctx, module)?;
            if self.verify_each {
                verify_or_error(ctx, module, &self.registry)
                    .map_err(|msg| PassError::new(pass.name(), msg))?;
            }
            after_each(pass.name(), ctx, module).map_err(|msg| PassError::new(pass.name(), msg))?;
            self.statistics.push(PassStatistics {
                name: pass.name().to_string(),
                seconds: start.elapsed().as_secs_f64(),
                ops_after: ctx.num_live_ops(),
            });
        }
        Ok(())
    }
}

/// A pass defined by a closure; convenient for tests and simple rewrites.
pub struct FnPass<F> {
    name: String,
    f: F,
}

impl<F> FnPass<F>
where
    F: Fn(&mut IrContext, OpId) -> PassResult,
{
    /// Wraps a closure as a pass.
    pub fn new(name: impl Into<String>, f: F) -> Self {
        Self { name: name.into(), f }
    }
}

impl<F> Pass for FnPass<F>
where
    F: Fn(&mut IrContext, OpId) -> PassResult,
{
    fn name(&self) -> &str {
        &self.name
    }

    fn run(&self, ctx: &mut IrContext, module: OpId) -> PassResult {
        (self.f)(ctx, module)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attributes::{AttrMap, Attribute};
    use crate::types::Type;

    fn make_module(ctx: &mut IrContext) -> OpId {
        let module = ctx.create_op("builtin.module", vec![], vec![], AttrMap::new(), 1);
        let body = ctx.add_block(ctx.op_region(module, 0), vec![]);
        let c = ctx.create_op("arith.constant", vec![], vec![Type::f32()], AttrMap::new(), 0);
        ctx.append_op(body, c);
        module
    }

    #[test]
    fn passes_run_in_order() {
        let mut ctx = IrContext::new();
        let module = make_module(&mut ctx);
        let mut pm = PassManager::new()
            .with_pass(Box::new(FnPass::new("mark-a", |ctx: &mut IrContext, m: OpId| {
                ctx.set_attr(m, "a", Attribute::int(1));
                Ok(())
            })))
            .with_pass(Box::new(FnPass::new("mark-b", |ctx: &mut IrContext, m: OpId| {
                assert!(ctx.attr(m, "a").is_some(), "first pass must have run");
                ctx.set_attr(m, "b", Attribute::int(2));
                Ok(())
            })));
        assert_eq!(pm.pass_names(), vec!["mark-a", "mark-b"]);
        assert_eq!(pm.len(), 2);
        pm.run(&mut ctx, module).unwrap();
        assert!(ctx.attr(module, "b").is_some());
        assert_eq!(pm.statistics().len(), 2);
        assert!(pm.statistics()[0].ops_after >= 1);
    }

    #[test]
    fn failing_pass_stops_pipeline() {
        let mut ctx = IrContext::new();
        let module = make_module(&mut ctx);
        let mut pm = PassManager::new()
            .with_pass(Box::new(FnPass::new("fails", |_: &mut IrContext, _: OpId| {
                Err(PassError::new("fails", "intentional"))
            })))
            .with_pass(Box::new(FnPass::new("never-runs", |ctx: &mut IrContext, m: OpId| {
                ctx.set_attr(m, "never", Attribute::Unit);
                Ok(())
            })));
        let err = pm.run(&mut ctx, module).unwrap_err();
        assert_eq!(err.pass, "fails");
        assert!(ctx.attr(module, "never").is_none());
    }

    #[test]
    fn verify_each_catches_broken_ir() {
        let mut ctx = IrContext::new();
        let module = make_module(&mut ctx);
        let mut pm = PassManager::new().verify_each(true).with_pass(Box::new(FnPass::new(
            "breaks-ir",
            |ctx: &mut IrContext, m: OpId| {
                // Erase the constant but leave a new op using its result.
                let body = ctx.entry_block(ctx.op_region(m, 0)).unwrap();
                let c = ctx.block_ops(body)[0];
                let v = ctx.result(c, 0);
                let user =
                    ctx.create_op("arith.negf", vec![v], vec![Type::f32()], AttrMap::new(), 0);
                ctx.append_op(body, user);
                ctx.erase_op(c);
                Ok(())
            },
        )));
        let err = pm.run(&mut ctx, module).unwrap_err();
        assert!(err.message.contains("verification error"));
    }

    #[test]
    fn run_with_observes_every_pass_and_can_abort() {
        let mut ctx = IrContext::new();
        let module = make_module(&mut ctx);
        let mut pm = PassManager::new()
            .with_pass(Box::new(FnPass::new("one", |_: &mut IrContext, _| Ok(()))))
            .with_pass(Box::new(FnPass::new("two", |_: &mut IrContext, _| Ok(()))));
        let mut seen = Vec::new();
        pm.run_with(&mut ctx, module, &mut |name, _, _| {
            seen.push(name.to_string());
            Ok(())
        })
        .unwrap();
        assert_eq!(seen, vec!["one", "two"]);

        let err = pm
            .run_with(&mut ctx, module, &mut |name, _, _| Err(format!("reject {name}")))
            .unwrap_err();
        assert_eq!(err.pass, "one");
        assert_eq!(err.message, "reject one");
    }

    #[test]
    fn empty_pass_manager_is_noop() {
        let mut ctx = IrContext::new();
        let module = make_module(&mut ctx);
        let mut pm = PassManager::new();
        assert!(pm.is_empty());
        pm.run(&mut ctx, module).unwrap();
        assert!(pm.statistics().is_empty());
    }
}
