//! Parser for the generic textual form emitted by [`crate::printer`].
//!
//! The parser accepts the generic operation syntax:
//!
//! ```text
//! %0 = "arith.constant"() {value = 1.234500e-1 : f32} : () -> (f32)
//! ```
//!
//! It is primarily used by tests (round-trip properties) and by the
//! examples to load IR snippets; the pipeline itself constructs IR through
//! builders.

use std::collections::BTreeMap;
use std::collections::HashMap;

use crate::attributes::{AttrMap, Attribute, FloatBits};
use crate::ir::{BlockId, IrContext, IrError, IrResult, OpId, ValueId};
use crate::types::{Signedness, Type};

/// Parses a single top-level operation (typically a `builtin.module`).
pub fn parse_op(ctx: &mut IrContext, text: &str) -> IrResult<OpId> {
    let mut p = Parser::new(text);
    let op = p.parse_op(ctx, &mut HashMap::new(), None)?;
    p.skip_ws();
    if !p.at_end() {
        return Err(p.error("trailing input after top-level operation"));
    }
    Ok(op)
}

struct Parser<'a> {
    text: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Self { text: text.as_bytes(), pos: 0 }
    }

    fn error(&self, msg: &str) -> IrError {
        let around: String = self.text[self.pos..self.text.len().min(self.pos + 24)]
            .iter()
            .map(|&b| b as char)
            .collect();
        IrError::new(format!("parse error at byte {}: {msg} (near {around:?})", self.pos))
    }

    fn at_end(&self) -> bool {
        self.pos >= self.text.len()
    }

    fn peek(&self) -> Option<u8> {
        self.text.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn skip_ws(&mut self) {
        while let Some(c) = self.peek() {
            if c.is_ascii_whitespace() {
                self.pos += 1;
            } else if c == b'/' && self.text.get(self.pos + 1) == Some(&b'/') {
                while let Some(c) = self.peek() {
                    if c == b'\n' {
                        break;
                    }
                    self.pos += 1;
                }
            } else {
                break;
            }
        }
    }

    fn eat(&mut self, token: &str) -> bool {
        self.skip_ws();
        if self.text[self.pos..].starts_with(token.as_bytes()) {
            self.pos += token.len();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, token: &str) -> IrResult<()> {
        if self.eat(token) {
            Ok(())
        } else {
            Err(self.error(&format!("expected {token:?}")))
        }
    }

    fn peek_token(&mut self, token: &str) -> bool {
        self.skip_ws();
        self.text[self.pos..].starts_with(token.as_bytes())
    }

    fn parse_ident(&mut self) -> IrResult<String> {
        self.skip_ws();
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == b'_' || c == b'.' || c == b'$' {
                self.pos += 1;
            } else {
                break;
            }
        }
        if start == self.pos {
            return Err(self.error("expected identifier"));
        }
        Ok(String::from_utf8_lossy(&self.text[start..self.pos]).into_owned())
    }

    fn parse_string(&mut self) -> IrResult<String> {
        self.skip_ws();
        self.expect("\"")?;
        let mut out = String::new();
        loop {
            match self.bump() {
                Some(b'"') => break,
                Some(b'\\') => match self.bump() {
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(c) => out.push(c as char),
                    None => return Err(self.error("unterminated escape")),
                },
                Some(c) => out.push(c as char),
                None => return Err(self.error("unterminated string literal")),
            }
        }
        Ok(out)
    }

    fn parse_integer(&mut self) -> IrResult<i64> {
        self.skip_ws();
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() {
                self.pos += 1;
            } else {
                break;
            }
        }
        if start == self.pos {
            return Err(self.error("expected integer"));
        }
        String::from_utf8_lossy(&self.text[start..self.pos])
            .parse::<i64>()
            .map_err(|e| self.error(&format!("bad integer: {e}")))
    }

    /// Parses a number (integer, float, or the non-finite float keywords
    /// `nan` / `inf`, optionally signed) returning the raw text.
    fn parse_number_text(&mut self) -> IrResult<String> {
        self.skip_ws();
        let start = self.pos;
        if matches!(self.peek(), Some(b'-') | Some(b'+')) {
            self.pos += 1;
        }
        // The printer spells non-finite floats as sign-carrying keywords.
        for keyword in [b"nan".as_slice(), b"inf".as_slice()] {
            if self.text[self.pos..].starts_with(keyword) {
                self.pos += keyword.len();
                return Ok(String::from_utf8_lossy(&self.text[start..self.pos]).into_owned());
            }
        }
        let mut saw_digit = false;
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() {
                saw_digit = true;
                self.pos += 1;
            } else if c == b'.' || c == b'e' || c == b'E' {
                self.pos += 1;
                if matches!(self.peek(), Some(b'-') | Some(b'+')) {
                    self.pos += 1;
                }
            } else {
                break;
            }
        }
        if !saw_digit {
            return Err(self.error("expected number"));
        }
        Ok(String::from_utf8_lossy(&self.text[start..self.pos]).into_owned())
    }

    /// Parses the text of [`Parser::parse_number_text`] as a float,
    /// handling the `nan` / `inf` keywords with an explicit sign so a
    /// negative NaN keeps its sign bit across the round trip.
    fn float_from_text(text: &str) -> Option<f64> {
        let (sign, rest) = match text.strip_prefix('-') {
            Some(rest) => (-1.0f64, rest),
            None => (1.0f64, text.strip_prefix('+').unwrap_or(text)),
        };
        let magnitude = match rest {
            "nan" => f64::NAN,
            "inf" => f64::INFINITY,
            _ => rest.parse().ok()?,
        };
        Some(f64::copysign(magnitude, sign))
    }

    fn parse_value_ref(&mut self, values: &HashMap<usize, ValueId>) -> IrResult<ValueId> {
        self.expect("%")?;
        let n = self.parse_integer()? as usize;
        values.get(&n).copied().ok_or_else(|| self.error(&format!("unknown value %{n}")))
    }

    // ------------------------------------------------------------------ types

    fn parse_type(&mut self) -> IrResult<Type> {
        self.skip_ws();
        if self.peek_token("(") {
            // Function type: (a, b) -> (c)
            self.expect("(")?;
            let mut inputs = Vec::new();
            if !self.peek_token(")") {
                loop {
                    inputs.push(self.parse_type()?);
                    if !self.eat(",") {
                        break;
                    }
                }
            }
            self.expect(")")?;
            self.expect("->")?;
            let mut results = Vec::new();
            if self.eat("(") {
                if !self.peek_token(")") {
                    loop {
                        results.push(self.parse_type()?);
                        if !self.eat(",") {
                            break;
                        }
                    }
                }
                self.expect(")")?;
            } else {
                results.push(self.parse_type()?);
            }
            return Ok(Type::Function { inputs, results });
        }
        if self.eat("!") {
            let full = self.parse_ident()?;
            let (dialect, name) = full
                .split_once('.')
                .ok_or_else(|| self.error("dialect type must be !dialect.name"))?;
            let mut params = Vec::new();
            if self.eat("<") {
                if !self.peek_token(">") {
                    loop {
                        params.push(self.parse_attribute()?);
                        if !self.eat(",") {
                            break;
                        }
                    }
                }
                self.expect(">")?;
            }
            return Ok(Type::dialect(dialect, name, params));
        }
        let ident = self.parse_ident()?;
        match ident.as_str() {
            "index" => Ok(Type::Index),
            "none" => Ok(Type::None),
            "f16" => Ok(Type::f16()),
            "f32" => Ok(Type::f32()),
            "f64" => Ok(Type::f64()),
            "tensor" | "memref" => {
                self.expect("<")?;
                let (shape, elem) = self.parse_shaped_body()?;
                self.expect(">")?;
                Ok(if ident == "tensor" {
                    Type::Tensor { shape, elem: Box::new(elem) }
                } else {
                    Type::MemRef { shape, elem: Box::new(elem) }
                })
            }
            other => {
                if let Some(width) = other.strip_prefix("ui") {
                    let width = width.parse().map_err(|_| self.error("bad int width"))?;
                    Ok(Type::Integer { width, signedness: Signedness::Unsigned })
                } else if let Some(width) = other.strip_prefix("si") {
                    let width = width.parse().map_err(|_| self.error("bad int width"))?;
                    Ok(Type::Integer { width, signedness: Signedness::Signed })
                } else if let Some(width) = other.strip_prefix('i') {
                    let width = width.parse().map_err(|_| self.error("bad int width"))?;
                    Ok(Type::Integer { width, signedness: Signedness::Signless })
                } else {
                    Err(self.error(&format!("unknown type {other:?}")))
                }
            }
        }
    }

    /// Parses the `d0xd1x...xelem` body of a tensor/memref type.
    fn parse_shaped_body(&mut self) -> IrResult<(Vec<i64>, Type)> {
        let mut shape = Vec::new();
        loop {
            self.skip_ws();
            // A dimension is digits or '?' followed by 'x'.
            let save = self.pos;
            if self.eat("?") {
                if self.eat("x") {
                    shape.push(-1);
                    continue;
                }
                self.pos = save;
            }
            let mut digits_end = self.pos;
            while let Some(c) = self.text.get(digits_end) {
                if c.is_ascii_digit() {
                    digits_end += 1;
                } else {
                    break;
                }
            }
            if digits_end > self.pos && self.text.get(digits_end) == Some(&b'x') {
                let dim: i64 = String::from_utf8_lossy(&self.text[self.pos..digits_end])
                    .parse()
                    .map_err(|_| self.error("bad dimension"))?;
                shape.push(dim);
                self.pos = digits_end + 1;
                continue;
            }
            break;
        }
        let elem = self.parse_type()?;
        Ok((shape, elem))
    }

    // ------------------------------------------------------------- attributes

    fn parse_attribute(&mut self) -> IrResult<Attribute> {
        self.skip_ws();
        match self.peek() {
            Some(b'"') => {
                let s = self.parse_string()?;
                Ok(Attribute::Str(s))
            }
            Some(b'@') => {
                self.expect("@")?;
                Ok(Attribute::SymbolRef(self.parse_ident()?))
            }
            Some(b'[') => {
                self.expect("[")?;
                let mut items = Vec::new();
                if !self.peek_token("]") {
                    loop {
                        items.push(self.parse_attribute()?);
                        if !self.eat(",") {
                            break;
                        }
                    }
                }
                self.expect("]")?;
                Ok(Attribute::Array(items))
            }
            Some(b'{') => {
                self.expect("{")?;
                let mut map = BTreeMap::new();
                if !self.peek_token("}") {
                    loop {
                        let key = self.parse_ident()?;
                        self.expect("=")?;
                        let value = self.parse_attribute()?;
                        map.insert(key, value);
                        if !self.eat(",") {
                            break;
                        }
                    }
                }
                self.expect("}")?;
                Ok(Attribute::Dict(map))
            }
            Some(b'#') => {
                self.expect("#")?;
                let full = self.parse_ident()?;
                let (dialect, name) = full
                    .split_once('.')
                    .ok_or_else(|| self.error("dialect attr must be #dialect.name"))?;
                let mut params = Vec::new();
                if self.eat("<") {
                    if !self.peek_token(">") {
                        loop {
                            params.push(self.parse_attribute()?);
                            if !self.eat(",") {
                                break;
                            }
                        }
                    }
                    self.expect(">")?;
                }
                Ok(Attribute::dialect(dialect, name, params))
            }
            Some(b'!') | Some(b'(') => Ok(Attribute::Type(self.parse_type()?)),
            Some(c) if c.is_ascii_digit() || c == b'-' || c == b'+' => self.parse_number_attr(),
            _ => {
                let save = self.pos;
                let ident = self.parse_ident()?;
                match ident.as_str() {
                    "unit" => Ok(Attribute::Unit),
                    "true" => Ok(Attribute::Bool(true)),
                    "false" => Ok(Attribute::Bool(false)),
                    // Unsigned non-finite floats (the signed forms enter
                    // through the number dispatch above).
                    "nan" | "inf" => {
                        self.pos = save;
                        self.parse_number_attr()
                    }
                    "array" => {
                        self.expect("<")?;
                        let mut items = Vec::new();
                        if !self.peek_token(">") {
                            loop {
                                items.push(self.parse_integer()?);
                                if !self.eat(",") {
                                    break;
                                }
                            }
                        }
                        self.expect(">")?;
                        Ok(Attribute::IndexArray(items))
                    }
                    "dense" => {
                        self.expect("<")?;
                        if self.peek_token("[") {
                            self.expect("[")?;
                            let mut items = Vec::new();
                            if !self.peek_token("]") {
                                loop {
                                    let t = self.parse_number_text()?;
                                    let v = Self::float_from_text(&t)
                                        .ok_or_else(|| self.error("bad float in dense"))?;
                                    items.push(FloatBits::new(v));
                                    if !self.eat(",") {
                                        break;
                                    }
                                }
                            }
                            self.expect("]")?;
                            self.expect(">")?;
                            self.expect(":")?;
                            let ty = self.parse_type()?;
                            Ok(Attribute::DenseF32(items, ty))
                        } else {
                            let t = self.parse_number_text()?;
                            let v = Self::float_from_text(&t)
                                .ok_or_else(|| self.error("bad float in dense"))?;
                            self.expect(">")?;
                            self.expect(":")?;
                            let ty = self.parse_type()?;
                            Ok(Attribute::DenseSplat(FloatBits::new(v), ty))
                        }
                    }
                    _ => {
                        // Fall back to parsing as a type attribute (f32, i16, tensor<..>...).
                        self.pos = save;
                        Ok(Attribute::Type(self.parse_type()?))
                    }
                }
            }
        }
    }

    fn parse_number_attr(&mut self) -> IrResult<Attribute> {
        let text = self.parse_number_text()?;
        let is_float = text.contains('.')
            || text.contains('e')
            || text.contains('E')
            || text.ends_with("nan")
            || text.ends_with("inf");
        let ty = if self.eat(":") {
            self.parse_type()?
        } else if is_float {
            Type::f64()
        } else {
            Type::int(64)
        };
        if is_float || ty.is_float() {
            let v = Self::float_from_text(&text).ok_or_else(|| self.error("bad float"))?;
            Ok(Attribute::Float(FloatBits::new(v), ty))
        } else {
            let v: i64 = text.parse().map_err(|_| self.error("bad integer"))?;
            Ok(Attribute::Int(v, ty))
        }
    }

    // ------------------------------------------------------------- operations

    fn parse_op(
        &mut self,
        ctx: &mut IrContext,
        values: &mut HashMap<usize, ValueId>,
        parent: Option<BlockId>,
    ) -> IrResult<OpId> {
        self.skip_ws();
        // Optional results: %0, %1 =
        let mut result_names = Vec::new();
        let save = self.pos;
        if self.peek() == Some(b'%') {
            loop {
                self.expect("%")?;
                result_names.push(self.parse_integer()? as usize);
                if !self.eat(",") {
                    break;
                }
            }
            if !self.eat("=") {
                // Not a result list after all (shouldn't happen in generic form).
                self.pos = save;
                result_names.clear();
            }
        }
        let name = self.parse_string()?;
        self.expect("(")?;
        let mut operands = Vec::new();
        if !self.peek_token(")") {
            loop {
                operands.push(self.parse_value_ref(values)?);
                if !self.eat(",") {
                    break;
                }
            }
        }
        self.expect(")")?;

        let mut attrs = AttrMap::new();
        if self.eat("{") {
            if !self.peek_token("}") {
                loop {
                    let key = self.parse_ident()?;
                    self.expect("=")?;
                    let value = self.parse_attribute()?;
                    attrs.insert(key, value);
                    if !self.eat(",") {
                        break;
                    }
                }
            }
            self.expect("}")?;
        }

        // Regions (parsed after creating the op so nested ops can be attached).
        let mut region_sources = Vec::new();
        if self.peek_token("(") && self.lookahead_region() {
            self.expect("(")?;
            self.expect("{")?;
            region_sources.push(());
            // Rewind: regions need the op created first. Simpler: parse regions
            // into a detached op afterwards. To keep a single pass we create
            // the op now with zero regions and fill them while parsing.
            // (handled below)
            self.pos -= 1; // step back before '{'
        }

        // Create the op shell first (results resolved after trailing type).
        let op = ctx.create_op(name, operands, Vec::new(), attrs, 0);
        if let Some(block) = parent {
            ctx.append_op(block, op);
        }

        // Parse regions if present: " ({ ... }, { ... })".
        if !region_sources.is_empty() {
            // first region already positioned at '{'
            loop {
                self.expect("{")?;
                let region = ctx.add_region(op);
                self.parse_region_body(ctx, values, region)?;
                self.expect("}")?;
                if !self.eat(",") {
                    break;
                }
            }
            self.expect(")")?;
        }

        // Trailing type: ":" (operand types) -> (result types)
        self.expect(":")?;
        self.expect("(")?;
        if !self.peek_token(")") {
            loop {
                let _ = self.parse_type()?;
                if !self.eat(",") {
                    break;
                }
            }
        }
        self.expect(")")?;
        self.expect("->")?;
        let mut result_types = Vec::new();
        if self.eat("(") {
            if !self.peek_token(")") {
                loop {
                    result_types.push(self.parse_type()?);
                    if !self.eat(",") {
                        break;
                    }
                }
            }
            self.expect(")")?;
        } else {
            result_types.push(self.parse_type()?);
        }

        if result_types.len() != result_names.len() {
            return Err(self.error(&format!(
                "op has {} result names but {} result types",
                result_names.len(),
                result_types.len()
            )));
        }
        // Materialize results now.
        for (index, ty) in result_types.into_iter().enumerate() {
            let v = ctx.add_op_result(op, ty, index);
            values.insert(result_names[index], v);
        }
        Ok(op)
    }

    /// Looks ahead to decide whether `(` starts a region list (`({`) or the
    /// trailing type.
    fn lookahead_region(&mut self) -> bool {
        self.skip_ws();
        let mut i = self.pos;
        if self.text.get(i) != Some(&b'(') {
            return false;
        }
        i += 1;
        while let Some(c) = self.text.get(i) {
            if c.is_ascii_whitespace() {
                i += 1;
            } else {
                break;
            }
        }
        self.text.get(i) == Some(&b'{')
    }

    fn parse_region_body(
        &mut self,
        ctx: &mut IrContext,
        values: &mut HashMap<usize, ValueId>,
        region: crate::ir::RegionId,
    ) -> IrResult<()> {
        // Zero or more blocks: ^bbN(%a: ty, ...): ops...
        loop {
            self.skip_ws();
            if self.peek() != Some(b'^') {
                break;
            }
            self.expect("^")?;
            let _label = self.parse_ident()?;
            let mut arg_names = Vec::new();
            let mut arg_types = Vec::new();
            if self.eat("(") {
                if !self.peek_token(")") {
                    loop {
                        self.expect("%")?;
                        arg_names.push(self.parse_integer()? as usize);
                        self.expect(":")?;
                        arg_types.push(self.parse_type()?);
                        if !self.eat(",") {
                            break;
                        }
                    }
                }
                self.expect(")")?;
            }
            self.expect(":")?;
            let block = ctx.add_block(region, arg_types);
            for (name, &arg) in arg_names.iter().zip(ctx.block_args(block)) {
                values.insert(*name, arg);
            }
            // Ops until '}' or next '^'.
            loop {
                self.skip_ws();
                match self.peek() {
                    Some(b'}') | Some(b'^') | None => break,
                    _ => {
                        self.parse_op(ctx, values, Some(block))?;
                    }
                }
            }
        }
        Ok(())
    }
}

impl IrContext {
    /// Adds a result value to an existing op (used by the parser, which
    /// learns result types only after the op body).
    pub(crate) fn add_op_result(&mut self, op: OpId, ty: Type, index: usize) -> ValueId {
        let v = self.new_value(ty, crate::ir::ValueDef::OpResult { op, index });
        self.op_mut(op).results.push(v);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::printer::print_op;

    #[test]
    fn parse_simple_module() {
        let text = r#"
"builtin.module"() ({
^bb0():
  %0 = "arith.constant"() {value = 1.234500e-1 : f32} : () -> (f32)
  %1 = "arith.addf"(%0, %0) : (f32, f32) -> (f32)
  "func.return"(%1) : (f32) -> ()
}) : () -> ()
"#;
        let mut ctx = IrContext::new();
        let module = parse_op(&mut ctx, text).expect("parse");
        assert_eq!(ctx.op_name(module), "builtin.module");
        let ops = ctx.walk(module);
        assert_eq!(ops.len(), 4);
        assert_eq!(ctx.op_name(ops[1]), "arith.constant");
        assert_eq!(ctx.attr(ops[1], "value").unwrap().as_float(), Some(0.12345));
    }

    #[test]
    fn parse_block_arguments() {
        let text = r#"
"stencil.apply"() ({
^bb0(%0: tensor<510xf32>, %1: index):
  "stencil.return"(%0) : (tensor<510xf32>) -> ()
}) : () -> ()
"#;
        let mut ctx = IrContext::new();
        let apply = parse_op(&mut ctx, text).expect("parse");
        let block = ctx.entry_block(ctx.op_region(apply, 0)).unwrap();
        assert_eq!(ctx.block_args(block).len(), 2);
        assert_eq!(ctx.value_type(ctx.block_args(block)[0]), &Type::tensor(vec![510], Type::f32()));
    }

    #[test]
    fn parse_dialect_types_and_attrs() {
        let text = r#"
"test.op"() {swaps = [#csl_stencil.exchange<array<1, 0>>], topo = #dmp.topo<254 : i64, 254 : i64>, ty = !stencil.temp<array<-1, 255>, f32>} : () -> ()
"#;
        let mut ctx = IrContext::new();
        let op = parse_op(&mut ctx, text).expect("parse");
        let swaps = ctx.attr(op, "swaps").unwrap().as_array().unwrap();
        assert_eq!(swaps.len(), 1);
        let topo = ctx.attr(op, "topo").unwrap().as_dialect().unwrap();
        assert_eq!(topo.dialect, "dmp");
        assert_eq!(topo.params.len(), 2);
        let ty = ctx.attr(op, "ty").unwrap().as_type().unwrap();
        assert!(ty.as_dialect_named("stencil", "temp").is_some());
    }

    #[test]
    fn non_finite_float_attributes_roundtrip() {
        use crate::attributes::Attribute;
        use crate::builder::{OpBuilder, OpSpec};
        let mut ctx = IrContext::new();
        let module = ctx.create_op("builtin.module", vec![], vec![], Default::default(), 1);
        let body = ctx.add_block(ctx.op_region(module, 0), vec![]);
        let mut b = OpBuilder::at_end(&mut ctx, body);
        b.insert(
            OpSpec::new("test.op")
                .attr("pnan", Attribute::f32(f32::NAN))
                .attr("nnan", Attribute::f32(-f32::NAN))
                .attr("pinf", Attribute::f32(f32::INFINITY))
                .attr("ninf", Attribute::f32(f32::NEG_INFINITY)),
        );
        b.insert(
            OpSpec::new("test.dense")
                .attr("v", Attribute::DenseSplat(FloatBits::new(f64::NEG_INFINITY), Type::f32())),
        );
        let printed = print_op(&ctx, module);
        let mut reparse_ctx = IrContext::new();
        let reparsed = parse_op(&mut reparse_ctx, &printed).expect("non-finite attrs parse back");
        // Fixpoint: the reprint is byte-identical.
        assert_eq!(printed, print_op(&reparse_ctx, reparsed));
        // is_nan and the sign survive (payload bits are not required to).
        let ops = reparse_ctx.walk(reparsed);
        let get = |name: &str| {
            reparse_ctx.attr(ops[1], name).and_then(Attribute::as_float).expect("float attr")
        };
        assert!(get("pnan").is_nan() && !get("pnan").is_sign_negative());
        assert!(get("nnan").is_nan() && get("nnan").is_sign_negative());
        assert_eq!(get("pinf"), f64::INFINITY);
        assert_eq!(get("ninf"), f64::NEG_INFINITY);
    }

    #[test]
    fn roundtrip_print_parse_print() {
        let text = r#"
"builtin.module"() ({
^bb0():
  %0 = "arith.constant"() {value = dense<1.234500e-1> : tensor<510xf32>} : () -> (tensor<510xf32>)
  %1 = "arith.mulf"(%0, %0) : (tensor<510xf32>, tensor<510xf32>) -> (tensor<510xf32>)
  "func.return"(%1) : (tensor<510xf32>) -> ()
}) : () -> ()
"#;
        let mut ctx = IrContext::new();
        let module = parse_op(&mut ctx, text).expect("parse 1");
        let printed = print_op(&ctx, module);
        let mut ctx2 = IrContext::new();
        let module2 = parse_op(&mut ctx2, &printed).expect("parse 2");
        let printed2 = print_op(&ctx2, module2);
        assert_eq!(printed, printed2, "printer output must be a fixed point");
    }

    #[test]
    fn error_on_unknown_value() {
        let text = r#""test.op"(%7) : (f32) -> ()"#;
        let mut ctx = IrContext::new();
        assert!(parse_op(&mut ctx, text).is_err());
    }

    #[test]
    fn error_on_trailing_garbage() {
        let text = r#""test.op"() : () -> () garbage"#;
        let mut ctx = IrContext::new();
        assert!(parse_op(&mut ctx, text).is_err());
    }
}
