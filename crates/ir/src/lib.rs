//! # wse-ir — an MLIR-style SSA IR core
//!
//! This crate provides the intermediate-representation infrastructure used
//! by the wafer-scale stencil compiler: a region-based SSA IR (operations,
//! blocks, regions, values, types and attributes) owned by an arena
//! [`Context`], an operation builder, a structural verifier with pluggable
//! dialect verifiers, a generic textual printer and parser, a
//! pattern-rewriting engine and a pass manager.
//!
//! The design mirrors MLIR/xDSL (and pliron's `Context`), which the
//! paper's pipeline is built on: operations are identified by
//! dialect-qualified names (`"stencil.apply"`), carry attributes, operands,
//! results and nested regions, are referred to by copyable handles
//! ([`OpRef`], [`ValueRef`], ...) into the owning [`Context`], and are
//! manipulated in place by passes registered in a [`PassManager`].  Types
//! and attributes are interned through a storage uniquer keyed by an
//! [`fxhash::FxHashMap`], so structurally equal types share one
//! [`TypeRef`] handle and cloning IR never re-allocates type structure.
//! See the [`ir`] module docs for the ownership and handle-invalidation
//! rules.
//!
//! ```
//! use wse_ir::{IrContext, OpBuilder, OpSpec, Type, Attribute, print_op};
//!
//! # fn main() {
//! let mut ctx = IrContext::new();
//! let module = ctx.create_op("builtin.module", vec![], vec![], Default::default(), 1);
//! let body = ctx.add_block(ctx.op_region(module, 0), vec![]);
//! let mut b = OpBuilder::at_end(&mut ctx, body);
//! let c = b.insert_value(
//!     OpSpec::new("arith.constant")
//!         .results([Type::f32()])
//!         .attr("value", Attribute::f32(0.12345)),
//! );
//! b.insert(OpSpec::new("func.return").operands([c]));
//! let text = print_op(&ctx, module);
//! assert!(text.contains("arith.constant"));
//! # }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod attributes;
pub mod builder;
pub mod diagnostics;
pub mod fxhash;
pub mod ir;
pub mod parser;
pub mod pass;
pub mod printer;
pub mod rewrite;
pub mod types;
pub mod verifier;

pub use attributes::{AttrMap, Attribute, DialectAttr, FloatBits};
pub use builder::{InsertPoint, OpBuilder, OpSpec};
pub use diagnostics::{lookup as lookup_diagnostic, DiagnosticInfo, Severity};
pub use fxhash::{FxHashMap, FxHashSet, FxHasher};
pub use ir::{
    AttrRef, BlockId, BlockRef, Context, IrContext, IrError, IrResult, OpData, OpId, OpRef,
    RegionId, RegionRef, TypeRef, ValueDef, ValueId, ValueRef,
};
pub use parser::parse_op;
pub use pass::{FnPass, Pass, PassError, PassManager, PassResult, PassStatistics};
pub use printer::print_op;
pub use rewrite::{apply_patterns_greedy, RewriteOutcome, RewritePattern, Rewriter};
pub use types::{DialectType, FloatKind, Signedness, Type};
pub use verifier::{verify, verify_or_error, DialectRegistry, OpVerifier, VerifyError};
