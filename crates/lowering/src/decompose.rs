//! Group 1 transformations: decomposition and data dependencies
//! (Section 5.1 of the paper).
//!
//! * `distribute-stencil` decomposes the x/y dimensions across the WSE's
//!   2-D grid of PEs and inserts `dmp.swap` operations describing the halo
//!   exchanges each `stencil.apply` requires.
//! * `tensorize-z` converts the three-dimensional grid of `f32` scalars
//!   into a two-dimensional grid of `tensor<z x f32>` columns, so that each
//!   stencil element (one column) maps to an individual PE.

use std::collections::HashMap;

use wse_dialects::dmp::{Exchange, Topology};
use wse_dialects::{arith, dmp, stencil, tensor};
use wse_ir::{Attribute, FloatBits, IrContext, OpBuilder, OpId, Pass, PassResult, Type, ValueId};

use crate::analysis::{analyze_apply, LinearCombination};

/// Encodes linear combinations as an attribute so later passes can reuse
/// the analysis without re-deriving it from a rewritten body.
pub fn combinations_to_attr(combos: &[LinearCombination]) -> Attribute {
    Attribute::Array(
        combos
            .iter()
            .map(|combo| {
                Attribute::Array(
                    std::iter::once(Attribute::f32(combo.constant))
                        .chain(combo.terms.iter().map(|t| {
                            Attribute::Array(vec![
                                Attribute::int(t.input as i64),
                                Attribute::IndexArray(t.offset.clone()),
                                Attribute::f32(t.coeff),
                            ])
                        }))
                        .collect(),
                )
            })
            .collect(),
    )
}

/// Decodes linear combinations from their attribute form.
pub fn combinations_from_attr(attr: &Attribute) -> Option<Vec<LinearCombination>> {
    let combos = attr.as_array()?;
    let mut out = Vec::new();
    for combo in combos {
        let items = combo.as_array()?;
        let constant = items.first()?.as_float()? as f32;
        let mut terms = Vec::new();
        for item in &items[1..] {
            let parts = item.as_array()?;
            terms.push(crate::analysis::Term {
                input: parts.first()?.as_int()? as usize,
                offset: parts.get(1)?.as_index_array()?.to_vec(),
                coeff: parts.get(2)?.as_float()? as f32,
            });
        }
        out.push(LinearCombination { terms, constant });
    }
    Some(out)
}

/// Attribute key under which the analysis is cached on an apply.
pub const COMBINATIONS_ATTR: &str = "stencil_terms";

/// Computes the halo exchanges required by a set of combinations: one
/// exchange per cardinal direction whose width is the largest offset in
/// that direction.
pub fn exchanges_for(combos: &[LinearCombination]) -> Vec<Exchange> {
    let mut widths = [0i64; 4]; // +x, -x, +y, -y
    for combo in combos {
        for term in &combo.terms {
            let dx = term.offset.first().copied().unwrap_or(0);
            let dy = term.offset.get(1).copied().unwrap_or(0);
            if dx > 0 {
                widths[0] = widths[0].max(dx);
            }
            if dx < 0 {
                widths[1] = widths[1].max(-dx);
            }
            if dy > 0 {
                widths[2] = widths[2].max(dy);
            }
            if dy < 0 {
                widths[3] = widths[3].max(-dy);
            }
        }
    }
    let mut exchanges = Vec::new();
    // A PE needs data *from* the +x neighbor to evaluate a +x offset, so
    // the exchange descriptor records the neighbor the data comes from.
    if widths[0] > 0 {
        exchanges.push(Exchange::new(1, 0, widths[0]));
    }
    if widths[1] > 0 {
        exchanges.push(Exchange::new(-1, 0, widths[1]));
    }
    if widths[2] > 0 {
        exchanges.push(Exchange::new(0, 1, widths[2]));
    }
    if widths[3] > 0 {
        exchanges.push(Exchange::new(0, -1, widths[3]));
    }
    exchanges
}

// --------------------------------------------------------------------------
// distribute-stencil
// --------------------------------------------------------------------------

/// Inserts `dmp.swap` operations in front of every `stencil.apply` whose
/// body reads remote data, describing the decomposition across the PE grid.
#[derive(Debug, Clone, Copy)]
pub struct DistributeStencil {
    /// PE-grid extent in x.
    pub width: i64,
    /// PE-grid extent in y.
    pub height: i64,
}

impl Pass for DistributeStencil {
    fn name(&self) -> &str {
        "distribute-stencil"
    }

    fn run(&self, ctx: &mut IrContext, module: OpId) -> PassResult {
        let topology = Topology::new(self.width, self.height);
        for apply in ctx.walk_named(module, stencil::APPLY) {
            let combos = analyze_apply(ctx, apply).map_err(|e| e.into_pass_error(self.name()))?;
            ctx.set_attr(apply, COMBINATIONS_ATTR, combinations_to_attr(&combos));
            let exchanges = exchanges_for(&combos);
            if exchanges.is_empty() {
                continue;
            }
            // Operands that are accessed remotely get a dmp.swap.
            let remote_inputs: Vec<usize> = {
                let mut v: Vec<usize> = combos
                    .iter()
                    .flat_map(|c| c.remote_terms().into_iter().map(|t| t.input))
                    .collect();
                v.sort_unstable();
                v.dedup();
                v
            };
            let operands = ctx.operands(apply).to_vec();
            let mut new_operands = operands.clone();
            for input in remote_inputs {
                let mut b = OpBuilder::before(ctx, apply);
                let swapped = dmp::swap(&mut b, operands[input], topology, &exchanges);
                new_operands[input] = swapped;
            }
            ctx.set_operands(apply, new_operands);
        }
        Ok(())
    }
}

// --------------------------------------------------------------------------
// tensorize-z
// --------------------------------------------------------------------------

/// Converts the 3-D scalar stencil into a 2-D stencil over `tensor<z x f32>`
/// columns and regenerates apply bodies accordingly (Listing 3).
#[derive(Debug, Default, Clone, Copy)]
pub struct TensorizeZ;

impl TensorizeZ {
    fn tensorize_type(ty: &Type) -> Option<Type> {
        let bounds = stencil::type_bounds(ty)?;
        if bounds.rank() != 3 {
            return None;
        }
        let elem = stencil::type_element(ty)?;
        if !matches!(elem, Type::Float(_)) {
            return None;
        }
        let z_len = bounds.ub[2] - bounds.lb[2];
        let xy = bounds.take_dims(2);
        let column = Type::tensor(vec![z_len], elem);
        Some(if stencil::is_field_type(ty) {
            stencil::field_type(&xy, column)
        } else {
            stencil::temp_type(&xy, column)
        })
    }
}

impl Pass for TensorizeZ {
    fn name(&self) -> &str {
        "tensorize-z"
    }

    fn run(&self, ctx: &mut IrContext, module: OpId) -> PassResult {
        // 1. Analyze every apply first (bodies are still scalar 3-D).
        let applies = ctx.walk_named(module, stencil::APPLY);
        let mut all_combos: HashMap<OpId, Vec<LinearCombination>> = HashMap::new();
        for &apply in &applies {
            let combos = match ctx.attr(apply, COMBINATIONS_ATTR).and_then(combinations_from_attr) {
                Some(combos) => combos,
                None => analyze_apply(ctx, apply).map_err(|e| e.into_pass_error(self.name()))?,
            };
            all_combos.insert(apply, combos);
        }

        // 2. Rewrite every stencil-typed value in the module to its 2-D /
        //    tensorized counterpart.
        let mut z_interior: i64 = 0;
        let mut z_storage_lb: i64 = 0;
        for op in ctx.walk(module) {
            for value in ctx.results(op).to_vec().into_iter().chain(ctx.operands(op).to_vec()) {
                let ty = ctx.value_type(value).clone();
                if let Some(bounds) = stencil::type_bounds(&ty) {
                    if bounds.rank() == 3 {
                        if stencil::is_temp_type(&ty) && bounds.lb[2] == 0 {
                            z_interior = z_interior.max(bounds.ub[2]);
                        }
                        z_storage_lb = z_storage_lb.min(bounds.lb[2]);
                    }
                }
                if let Some(new_ty) = Self::tensorize_type(&ty) {
                    ctx.set_value_type(value, new_ty);
                }
            }
            for &region in ctx.op_regions(op).to_vec().iter() {
                for &block in ctx.region_blocks(region).to_vec().iter() {
                    for arg in ctx.block_args(block).to_vec() {
                        let ty = ctx.value_type(arg).clone();
                        if let Some(new_ty) = Self::tensorize_type(&ty) {
                            ctx.set_value_type(arg, new_ty);
                        }
                    }
                }
            }
        }
        // Also rewrite function signatures and store bounds.
        for func_op in ctx.walk_named(module, wse_dialects::func::FUNC) {
            if let Some(Type::Function { inputs, results }) =
                ctx.attr(func_op, "function_type").and_then(Attribute::as_type).cloned()
            {
                let inputs = inputs
                    .iter()
                    .map(|t| Self::tensorize_type(t).unwrap_or_else(|| t.clone()))
                    .collect();
                let results = results
                    .iter()
                    .map(|t| Self::tensorize_type(t).unwrap_or_else(|| t.clone()))
                    .collect();
                ctx.set_attr(
                    func_op,
                    "function_type",
                    Attribute::Type(Type::Function { inputs, results }),
                );
            }
        }
        for store in ctx.walk_named(module, stencil::STORE) {
            if let Some(bounds) = stencil::store_bounds(ctx, store) {
                if bounds.rank() == 3 {
                    let xy = bounds.take_dims(2);
                    ctx.set_attr(store, "lb", Attribute::IndexArray(xy.lb));
                    ctx.set_attr(store, "ub", Attribute::IndexArray(xy.ub));
                }
            }
        }

        let z_halo = -z_storage_lb;

        // 3. Regenerate every apply body in tensorized form.
        for &apply in &applies {
            let combos = &all_combos[&apply];
            let z_len = z_interior.max(1);
            regenerate_tensorized_body(ctx, apply, combos, z_len, z_halo);
            ctx.set_attr(apply, COMBINATIONS_ATTR, combinations_to_attr(combos));
            ctx.set_attr(apply, "z_interior", Attribute::int(z_len));
            ctx.set_attr(apply, "z_halo", Attribute::int(z_halo));
        }
        Ok(())
    }
}

/// Rebuilds an apply body as 2-D accesses over `tensor<z x f32>` columns:
/// every term becomes an access at `[dx, dy]`, an `extract_slice` selecting
/// the `dz`-shifted window and a multiply-accumulate chain.
fn regenerate_tensorized_body(
    ctx: &mut IrContext,
    apply: OpId,
    combos: &[LinearCombination],
    z_interior: i64,
    z_halo: i64,
) {
    let body = stencil::apply_body(ctx, apply).expect("apply body");
    // Erase the old scalar body.
    for op in ctx.block_ops(body).to_vec().into_iter().rev() {
        ctx.erase_op(op);
    }
    let args = ctx.block_args(body).to_vec();
    let column_ty = Type::tensor(vec![z_interior], Type::f32());
    let mut results = Vec::new();
    let mut b = OpBuilder::at_end(ctx, body);
    for combo in combos {
        let mut acc: Option<ValueId> = None;
        for term in &combo.terms {
            let dx = term.offset.first().copied().unwrap_or(0);
            let dy = term.offset.get(1).copied().unwrap_or(0);
            let dz = term.offset.get(2).copied().unwrap_or(0);
            let column_storage_ty = b.ctx_ref().value_type(args[term.input]).clone();
            let storage_elem = stencil::type_element(&column_storage_ty)
                .unwrap_or_else(|| Type::tensor(vec![z_interior + 2 * z_halo], Type::f32()));
            // The operand's own z halo (forwarded interior temps have none).
            let elem_len = storage_elem.shape().map(|s| s[0]).unwrap_or(z_interior);
            let own_halo = (elem_len - z_interior) / 2;
            let access = stencil::access(&mut b, args[term.input], &[dx, dy], storage_elem);
            let window = tensor::extract_slice(&mut b, access, own_halo + dz, z_interior);
            let coeff = arith::constant_f32(&mut b, term.coeff, column_ty.clone());
            let scaled = arith::mulf(&mut b, window, coeff);
            acc = Some(match acc {
                Some(prev) => arith::addf(&mut b, prev, scaled),
                None => scaled,
            });
        }
        let value =
            acc.unwrap_or_else(|| arith::constant_f32(&mut b, combo.constant, column_ty.clone()));
        results.push(value);
    }
    stencil::build_return(ctx, body, results);
}

/// Convenience: reads the cached combination attribute of an apply.
pub fn apply_combinations(ctx: &IrContext, apply: OpId) -> Option<Vec<LinearCombination>> {
    ctx.attr(apply, COMBINATIONS_ATTR).and_then(combinations_from_attr)
}

/// Convenience accessor for a float attribute stored by these passes.
pub fn float_bits(value: f32) -> FloatBits {
    FloatBits::new(f64::from(value))
}

#[cfg(test)]
mod tests {
    use super::*;
    use wse_frontends::{benchmarks::Benchmark, emit_stencil_ir};
    use wse_ir::verify;

    fn run_group1(benchmark: Benchmark) -> (IrContext, OpId) {
        let ir = emit_stencil_ir(&benchmark.tiny_program()).unwrap();
        let mut ctx = ir.ctx;
        let (x, y) = (benchmark.tiny_program().grid.x, benchmark.tiny_program().grid.y);
        DistributeStencil { width: x, height: y }.run(&mut ctx, ir.module).unwrap();
        TensorizeZ.run(&mut ctx, ir.module).unwrap();
        (ctx, ir.module)
    }

    #[test]
    fn combination_attr_roundtrip() {
        let combos = vec![LinearCombination {
            terms: vec![crate::analysis::Term { input: 1, offset: vec![1, 0, -2], coeff: 0.25 }],
            constant: 0.5,
        }];
        let attr = combinations_to_attr(&combos);
        assert_eq!(combinations_from_attr(&attr), Some(combos));
    }

    #[test]
    fn exchange_widths_follow_the_radius() {
        let ir = emit_stencil_ir(&Benchmark::Seismic25.tiny_program()).unwrap();
        let apply = ir.ctx.walk_named(ir.module, stencil::APPLY)[0];
        let combos = analyze_apply(&ir.ctx, apply).unwrap();
        let exchanges = exchanges_for(&combos);
        assert_eq!(exchanges.len(), 4);
        assert!(exchanges.iter().all(|e| e.width == 4), "25-pt stencil needs width-4 halos");
    }

    #[test]
    fn distribute_inserts_swaps() {
        let ir = emit_stencil_ir(&Benchmark::Jacobian.tiny_program()).unwrap();
        let mut ctx = ir.ctx;
        DistributeStencil { width: 6, height: 6 }.run(&mut ctx, ir.module).unwrap();
        let swaps = ctx.walk_named(ir.module, dmp::SWAP);
        assert_eq!(swaps.len(), 1);
        assert_eq!(dmp::swap_topology(&ctx, swaps[0]), Some(Topology::new(6, 6)));
        assert_eq!(dmp::swap_exchanges(&ctx, swaps[0]).len(), 4);
        // The apply now consumes the swap's result.
        let apply = ctx.walk_named(ir.module, stencil::APPLY)[0];
        assert_eq!(ctx.defining_op(ctx.operand(apply, 0)), Some(swaps[0]));
        assert!(verify(&ctx, ir.module, &wse_csl::register_all()).is_empty());
    }

    #[test]
    fn local_only_apply_gets_no_swap() {
        // The acoustic benchmark's first equation (u_prev = u) has no remote
        // accesses, so only the second apply gets a swap.
        let ir = emit_stencil_ir(&Benchmark::Acoustic.tiny_program()).unwrap();
        let mut ctx = ir.ctx;
        DistributeStencil { width: 7, height: 7 }.run(&mut ctx, ir.module).unwrap();
        assert_eq!(ctx.walk_named(ir.module, dmp::SWAP).len(), 1);
    }

    #[test]
    fn tensorize_rewrites_types_and_bodies() {
        let (ctx, module) = run_group1(Benchmark::Jacobian);
        let registry = wse_csl::register_all();
        let errors = verify(&ctx, module, &registry);
        assert!(errors.is_empty(), "verification failed: {errors:?}");
        let apply = ctx.walk_named(module, stencil::APPLY)[0];
        // Result is now a 2-D temp of tensors.
        let result_ty = ctx.value_type(ctx.result(apply, 0));
        let bounds = stencil::type_bounds(result_ty).unwrap();
        assert_eq!(bounds.rank(), 2);
        let elem = stencil::type_element(result_ty).unwrap();
        assert_eq!(elem, Type::tensor(vec![12], Type::f32()));
        // Accesses are now 2-D and z-offsets became extract_slices.
        for offset in stencil::collect_access_offsets(&ctx, apply) {
            assert_eq!(offset.len(), 2);
        }
        assert!(!ctx.walk_named(module, tensor::EXTRACT_SLICE).is_empty());
        // The cached combination analysis survives on the op.
        assert_eq!(apply_combinations(&ctx, apply).unwrap()[0].terms.len(), 6);
        assert_eq!(ctx.attr_int(apply, "z_interior"), Some(12));
        assert_eq!(ctx.attr_int(apply, "z_halo"), Some(1));
    }

    #[test]
    fn tensorize_all_benchmarks_verify() {
        for benchmark in Benchmark::ALL {
            let (ctx, module) = run_group1(benchmark);
            let errors = verify(&ctx, module, &wse_csl::register_all());
            assert!(errors.is_empty(), "{}: {errors:?}", benchmark.name());
        }
    }
}
