//! Group 1 transformations: decomposition and data dependencies
//! (Section 5.1 of the paper).
//!
//! * `decompose-products` rewrites degree-2 (product) terms of polynomial
//!   stencil bodies into explicit elementwise-product applies over fresh
//!   internal scratch fields, so every apply the rest of the pipeline sees
//!   is either linear or a bare two-factor product.
//! * `distribute-stencil` decomposes the x/y dimensions across the WSE's
//!   2-D grid of PEs and inserts `dmp.swap` operations describing the halo
//!   exchanges each `stencil.apply` requires.
//! * `tensorize-z` converts the three-dimensional grid of `f32` scalars
//!   into a two-dimensional grid of `tensor<z x f32>` columns, so that each
//!   stencil element (one column) maps to an individual PE.

use std::collections::HashMap;

use wse_dialects::dmp::{Exchange, Topology};
use wse_dialects::{arith, dmp, stencil, tensor};
use wse_ir::{
    Attribute, FloatBits, IrContext, OpBuilder, OpId, Pass, PassError, PassResult, Type, ValueId,
};

use crate::analysis::{analyze_apply, Factor, LinearCombination, Term};
use crate::opt_passes::{add_internal_field, emit_combination_body, enclosing_func};

/// Encodes polynomial combinations as an attribute so later passes can
/// reuse the analysis without re-deriving it from a rewritten body.  Each
/// term is `[input, offset, coeff]`, extended with `[input2, offset2]` for
/// degree-2 product terms (the shorter form stays valid for linear terms,
/// keeping the encoding backward compatible).
pub fn combinations_to_attr(combos: &[LinearCombination]) -> Attribute {
    Attribute::Array(
        combos
            .iter()
            .map(|combo| {
                Attribute::Array(
                    std::iter::once(Attribute::f32(combo.constant))
                        .chain(combo.terms.iter().map(|t| {
                            let mut parts = vec![
                                Attribute::int(t.input as i64),
                                Attribute::IndexArray(t.offset.clone()),
                                Attribute::f32(t.coeff),
                            ];
                            if let Some(f2) = &t.factor2 {
                                parts.push(Attribute::int(f2.input as i64));
                                parts.push(Attribute::IndexArray(f2.offset.clone()));
                            }
                            Attribute::Array(parts)
                        }))
                        .collect(),
                )
            })
            .collect(),
    )
}

/// Decodes polynomial combinations from their attribute form.
pub fn combinations_from_attr(attr: &Attribute) -> Option<Vec<LinearCombination>> {
    let combos = attr.as_array()?;
    let mut out = Vec::new();
    for combo in combos {
        let items = combo.as_array()?;
        let constant = items.first()?.as_float()? as f32;
        let mut terms = Vec::new();
        for item in &items[1..] {
            let parts = item.as_array()?;
            let factor2 = match parts.get(3) {
                Some(input2) => Some(Factor {
                    input: input2.as_int()? as usize,
                    offset: parts.get(4)?.as_index_array()?.to_vec(),
                }),
                None => None,
            };
            terms.push(crate::analysis::Term {
                input: parts.first()?.as_int()? as usize,
                offset: parts.get(1)?.as_index_array()?.to_vec(),
                coeff: parts.get(2)?.as_float()? as f32,
                factor2,
            });
        }
        out.push(LinearCombination { terms, constant });
    }
    Some(out)
}

/// Attribute key under which the analysis is cached on an apply.
pub const COMBINATIONS_ATTR: &str = "stencil_terms";

/// Computes the halo exchanges required by a set of combinations: one
/// exchange per cardinal direction whose width is the largest offset in
/// that direction.
pub fn exchanges_for(combos: &[LinearCombination]) -> Vec<Exchange> {
    let mut widths = [0i64; 4]; // +x, -x, +y, -y
    for combo in combos {
        for factor in combo.terms.iter().flat_map(crate::analysis::Term::factors) {
            let dx = factor.offset.first().copied().unwrap_or(0);
            let dy = factor.offset.get(1).copied().unwrap_or(0);
            if dx > 0 {
                widths[0] = widths[0].max(dx);
            }
            if dx < 0 {
                widths[1] = widths[1].max(-dx);
            }
            if dy > 0 {
                widths[2] = widths[2].max(dy);
            }
            if dy < 0 {
                widths[3] = widths[3].max(-dy);
            }
        }
    }
    let mut exchanges = Vec::new();
    // A PE needs data *from* the +x neighbor to evaluate a +x offset, so
    // the exchange descriptor records the neighbor the data comes from.
    if widths[0] > 0 {
        exchanges.push(Exchange::new(1, 0, widths[0]));
    }
    if widths[1] > 0 {
        exchanges.push(Exchange::new(-1, 0, widths[1]));
    }
    if widths[2] > 0 {
        exchanges.push(Exchange::new(0, 1, widths[2]));
    }
    if widths[3] > 0 {
        exchanges.push(Exchange::new(0, -1, widths[3]));
    }
    exchanges
}

// --------------------------------------------------------------------------
// decompose-products
// --------------------------------------------------------------------------

/// Rewrites polynomial stencil bodies into linear ones by hoisting every
/// degree-2 term `coeff · a[off_a] · b[off_b]` into its own *product
/// apply* — a bare `a[off_a] * b[off_b]` stored to a fresh internal
/// scratch field — and replacing the term with `coeff · product[0]` in the
/// consumer.  Downstream, the product apply lowers to an elementwise Mul
/// kernel and the consumer stays on the existing linear Mac path; the
/// scratch fields ride the `internal_fields` plumbing, so they are real PE
/// buffers but not observable program state.
///
/// Applies whose analysis *fails* (degree > 2, unsupported ops) are left
/// untouched: the error keeps surfacing at `distribute-stencil` with its
/// own stable code.  Applies that already *are* bare products pass through
/// unchanged — they need no scratch field.
#[derive(Debug, Default, Clone, Copy)]
pub struct DecomposeProducts;

/// True for the shape a product apply itself has: one result computing a
/// single unit-coefficient degree-2 term.  The actor lowering consumes
/// this shape directly as an elementwise-product kernel.
pub fn is_bare_product(combos: &[LinearCombination]) -> bool {
    combos.len() == 1
        && combos[0].constant == 0.0
        && combos[0].terms.len() == 1
        && combos[0].terms[0].coeff == 1.0
        && combos[0].terms[0].factor2.is_some()
}

impl Pass for DecomposeProducts {
    fn name(&self) -> &str {
        "decompose-products"
    }

    fn run(&self, ctx: &mut IrContext, module: OpId) -> PassResult {
        for apply in ctx.walk_named(module, stencil::APPLY) {
            let Ok(combos) = analyze_apply(ctx, apply) else { continue };
            if combos.iter().all(|c| c.degree() < 2) || is_bare_product(&combos) {
                continue;
            }
            decompose_apply(ctx, apply, &combos)
                .map_err(|m| PassError::new(self.name(), m).with_code("malformed-body"))?;
        }
        Ok(())
    }
}

/// The first `stencil.store` consuming one of the apply's results.
fn first_store_of(ctx: &IrContext, apply: OpId) -> Option<OpId> {
    ctx.results(apply)
        .iter()
        .flat_map(|&r| ctx.uses_of(r))
        .find(|(op, idx)| ctx.op_name(*op) == stencil::STORE && *idx == 0)
        .map(|(store, _)| store)
}

/// The `field_names` entry for a kernel entry-block argument.
fn field_arg_name(ctx: &IrContext, func_op: OpId, value: ValueId) -> Option<String> {
    let entry = wse_dialects::func::func_body(ctx, func_op)?;
    let idx = ctx.block_args(entry).iter().position(|&a| a == value)?;
    ctx.attr(func_op, "field_names")
        .and_then(Attribute::as_array)?
        .get(idx)?
        .as_str()
        .map(str::to_string)
}

/// Splits every degree-2 term of `apply` out into a product apply + scratch
/// store, then rebuilds `apply` with the now-linear combinations.
fn decompose_apply(
    ctx: &mut IrContext,
    apply: OpId,
    combos: &[LinearCombination],
) -> Result<(), String> {
    let func_op = enclosing_func(ctx, apply).ok_or("apply is not inside a kernel function")?;
    let operands = ctx.operands(apply).to_vec();
    let results = ctx.results(apply).to_vec();
    let consumer_store = first_store_of(ctx, apply);

    // Store bounds for the scratch fields: the consumer's own store when it
    // has one, else the bounds encoded in its result temp type.
    let bounds = consumer_store
        .and_then(|store| stencil::store_bounds(ctx, store))
        .or_else(|| stencil::type_bounds(ctx.value_type(results[0])))
        .ok_or("cannot derive store bounds for product scratch fields")?;
    let rank = bounds.rank();

    // Scratch fields clone the storage type (and base name) of the field
    // the consumer writes, falling back to a halo-free field over the
    // consumer bounds — the product is only ever read at offset zero.
    let store_target = consumer_store.map(|store| ctx.operand(store, 1));
    let scratch_ty = store_target
        .map(|f| ctx.value_type(f).clone())
        .unwrap_or_else(|| stencil::field_type(&bounds, Type::f32()));
    let base_name = store_target
        .and_then(|f| field_arg_name(ctx, func_op, f))
        .unwrap_or_else(|| "t".to_string());

    // A distinct factor pair: (input a, offset a, input b, offset b).
    type FactorPair = (usize, Vec<i64>, usize, Vec<i64>);
    let mut new_operands = operands.clone();
    let mut new_combos: Vec<LinearCombination> = Vec::new();
    // One scratch field per distinct factor pair of this apply.
    let mut made: Vec<(FactorPair, usize)> = Vec::new();
    for combo in combos {
        let mut terms = Vec::new();
        for term in &combo.terms {
            let Some(f2) = &term.factor2 else {
                terms.push(term.clone());
                continue;
            };
            let key = (term.input, term.offset.clone(), f2.input, f2.offset.clone());
            let pos = match made.iter().find(|(k, _)| *k == key) {
                Some((_, pos)) => *pos,
                None => {
                    let src_a = operands[term.input];
                    let src_b = operands[f2.input];
                    let (prod_operands, ia, ib) = if src_a == src_b {
                        (vec![src_a], 0, 0)
                    } else {
                        (vec![src_a, src_b], 0, 1)
                    };
                    let (scratch_arg, _) =
                        add_internal_field(ctx, func_op, scratch_ty.clone(), |n| {
                            format!("{base_name}__prod{n}")
                        })?;
                    let temp_ty = stencil::temp_type(&bounds, Type::f32());
                    let mut b = OpBuilder::before(ctx, apply);
                    let (prod, body) = stencil::build_apply(&mut b, prod_operands, vec![temp_ty]);
                    emit_combination_body(
                        ctx,
                        body,
                        &[LinearCombination {
                            terms: vec![Term {
                                input: ia,
                                offset: term.offset.clone(),
                                coeff: 1.0,
                                factor2: Some(Factor { input: ib, offset: f2.offset.clone() }),
                            }],
                            constant: 0.0,
                        }],
                    );
                    let result = ctx.result(prod, 0);
                    let mut b = OpBuilder::after(ctx, prod);
                    stencil::store(&mut b, result, scratch_arg, &bounds);
                    new_operands.push(result);
                    let pos = new_operands.len() - 1;
                    made.push((key, pos));
                    pos
                }
            };
            terms.push(Term {
                input: pos,
                offset: vec![0; rank],
                coeff: term.coeff,
                factor2: None,
            });
        }
        new_combos.push(LinearCombination { terms, constant: combo.constant }.simplified());
    }

    // Rebuild the consumer linearly over the extended operand list.
    let result_types: Vec<Type> = results.iter().map(|&r| ctx.value_type(r).clone()).collect();
    let mut b = OpBuilder::before(ctx, apply);
    let (new_apply, body) = stencil::build_apply(&mut b, new_operands, result_types);
    emit_combination_body(ctx, body, &new_combos);
    let new_results = ctx.results(new_apply).to_vec();
    for (&old, &new) in results.iter().zip(&new_results) {
        ctx.replace_all_uses(old, new);
    }
    ctx.erase_op(apply);
    Ok(())
}

// --------------------------------------------------------------------------
// distribute-stencil
// --------------------------------------------------------------------------

/// Inserts `dmp.swap` operations in front of every `stencil.apply` whose
/// body reads remote data, describing the decomposition across the PE grid.
#[derive(Debug, Clone, Copy)]
pub struct DistributeStencil {
    /// PE-grid extent in x.
    pub width: i64,
    /// PE-grid extent in y.
    pub height: i64,
}

impl Pass for DistributeStencil {
    fn name(&self) -> &str {
        "distribute-stencil"
    }

    fn run(&self, ctx: &mut IrContext, module: OpId) -> PassResult {
        let topology = Topology::new(self.width, self.height);
        for apply in ctx.walk_named(module, stencil::APPLY) {
            let combos = analyze_apply(ctx, apply).map_err(|e| e.into_pass_error(self.name()))?;
            ctx.set_attr(apply, COMBINATIONS_ATTR, combinations_to_attr(&combos));
            let exchanges = exchanges_for(&combos);
            if exchanges.is_empty() {
                continue;
            }
            // Operands that are accessed remotely get a dmp.swap.  An input
            // counts as remote when *any factor* reads it at a non-zero x/y
            // offset.
            let remote_inputs: Vec<usize> = {
                let mut v: Vec<usize> = combos
                    .iter()
                    .flat_map(|c| c.terms.iter().flat_map(crate::analysis::Term::factors))
                    .filter(|f| {
                        f.offset.first().copied().unwrap_or(0) != 0
                            || f.offset.get(1).copied().unwrap_or(0) != 0
                    })
                    .map(|f| f.input)
                    .collect();
                v.sort_unstable();
                v.dedup();
                v
            };
            let operands = ctx.operands(apply).to_vec();
            let mut new_operands = operands.clone();
            for input in remote_inputs {
                let mut b = OpBuilder::before(ctx, apply);
                let swapped = dmp::swap(&mut b, operands[input], topology, &exchanges);
                new_operands[input] = swapped;
            }
            ctx.set_operands(apply, new_operands);
        }
        Ok(())
    }
}

// --------------------------------------------------------------------------
// tensorize-z
// --------------------------------------------------------------------------

/// Converts the 3-D scalar stencil into a 2-D stencil over `tensor<z x f32>`
/// columns and regenerates apply bodies accordingly (Listing 3).
#[derive(Debug, Default, Clone, Copy)]
pub struct TensorizeZ;

impl TensorizeZ {
    fn tensorize_type(ty: &Type) -> Option<Type> {
        let bounds = stencil::type_bounds(ty)?;
        if bounds.rank() != 3 {
            return None;
        }
        let elem = stencil::type_element(ty)?;
        if !matches!(elem, Type::Float(_)) {
            return None;
        }
        let z_len = bounds.ub[2] - bounds.lb[2];
        let xy = bounds.take_dims(2);
        let column = Type::tensor(vec![z_len], elem);
        Some(if stencil::is_field_type(ty) {
            stencil::field_type(&xy, column)
        } else {
            stencil::temp_type(&xy, column)
        })
    }
}

impl Pass for TensorizeZ {
    fn name(&self) -> &str {
        "tensorize-z"
    }

    fn run(&self, ctx: &mut IrContext, module: OpId) -> PassResult {
        // 1. Analyze every apply first (bodies are still scalar 3-D).
        let applies = ctx.walk_named(module, stencil::APPLY);
        let mut all_combos: HashMap<OpId, Vec<LinearCombination>> = HashMap::new();
        for &apply in &applies {
            let combos = match ctx.attr(apply, COMBINATIONS_ATTR).and_then(combinations_from_attr) {
                Some(combos) => combos,
                None => analyze_apply(ctx, apply).map_err(|e| e.into_pass_error(self.name()))?,
            };
            all_combos.insert(apply, combos);
        }

        // 2. Rewrite every stencil-typed value in the module to its 2-D /
        //    tensorized counterpart.
        let mut z_interior: i64 = 0;
        let mut z_storage_lb: i64 = 0;
        for op in ctx.walk(module) {
            for value in ctx.results(op).to_vec().into_iter().chain(ctx.operands(op).to_vec()) {
                let ty = ctx.value_type(value).clone();
                if let Some(bounds) = stencil::type_bounds(&ty) {
                    if bounds.rank() == 3 {
                        if stencil::is_temp_type(&ty) && bounds.lb[2] == 0 {
                            z_interior = z_interior.max(bounds.ub[2]);
                        }
                        z_storage_lb = z_storage_lb.min(bounds.lb[2]);
                    }
                }
                if let Some(new_ty) = Self::tensorize_type(&ty) {
                    ctx.set_value_type(value, new_ty);
                }
            }
            for &region in ctx.op_regions(op).to_vec().iter() {
                for &block in ctx.region_blocks(region).to_vec().iter() {
                    for arg in ctx.block_args(block).to_vec() {
                        let ty = ctx.value_type(arg).clone();
                        if let Some(new_ty) = Self::tensorize_type(&ty) {
                            ctx.set_value_type(arg, new_ty);
                        }
                    }
                }
            }
        }
        // Also rewrite function signatures and store bounds.
        for func_op in ctx.walk_named(module, wse_dialects::func::FUNC) {
            if let Some(Type::Function { inputs, results }) =
                ctx.attr(func_op, "function_type").and_then(Attribute::as_type).cloned()
            {
                let inputs = inputs
                    .iter()
                    .map(|t| Self::tensorize_type(t).unwrap_or_else(|| t.clone()))
                    .collect();
                let results = results
                    .iter()
                    .map(|t| Self::tensorize_type(t).unwrap_or_else(|| t.clone()))
                    .collect();
                ctx.set_attr(
                    func_op,
                    "function_type",
                    Attribute::Type(Type::Function { inputs, results }),
                );
            }
        }
        for store in ctx.walk_named(module, stencil::STORE) {
            if let Some(bounds) = stencil::store_bounds(ctx, store) {
                if bounds.rank() == 3 {
                    let xy = bounds.take_dims(2);
                    ctx.set_attr(store, "lb", Attribute::IndexArray(xy.lb));
                    ctx.set_attr(store, "ub", Attribute::IndexArray(xy.ub));
                }
            }
        }

        let z_halo = -z_storage_lb;

        // 3. Regenerate every apply body in tensorized form.
        for &apply in &applies {
            let combos = &all_combos[&apply];
            let z_len = z_interior.max(1);
            regenerate_tensorized_body(ctx, apply, combos, z_len, z_halo);
            ctx.set_attr(apply, COMBINATIONS_ATTR, combinations_to_attr(combos));
            ctx.set_attr(apply, "z_interior", Attribute::int(z_len));
            ctx.set_attr(apply, "z_halo", Attribute::int(z_halo));
        }
        Ok(())
    }
}

/// Rebuilds an apply body as 2-D accesses over `tensor<z x f32>` columns:
/// every term becomes an access at `[dx, dy]`, an `extract_slice` selecting
/// the `dz`-shifted window and a multiply-accumulate chain.
fn regenerate_tensorized_body(
    ctx: &mut IrContext,
    apply: OpId,
    combos: &[LinearCombination],
    z_interior: i64,
    z_halo: i64,
) {
    let body = stencil::apply_body(ctx, apply).expect("apply body");
    // Erase the old scalar body.
    for op in ctx.block_ops(body).to_vec().into_iter().rev() {
        ctx.erase_op(op);
    }
    let args = ctx.block_args(body).to_vec();
    let column_ty = Type::tensor(vec![z_interior], Type::f32());
    let mut results = Vec::new();
    let mut b = OpBuilder::at_end(ctx, body);
    for combo in combos {
        let mut acc: Option<ValueId> = None;
        for term in &combo.terms {
            // One windowed read per factor; degree-2 terms multiply their
            // two windows before the coefficient is applied.
            let mut value: Option<ValueId> = None;
            for factor in term.factors() {
                let dx = factor.offset.first().copied().unwrap_or(0);
                let dy = factor.offset.get(1).copied().unwrap_or(0);
                let dz = factor.offset.get(2).copied().unwrap_or(0);
                let column_storage_ty = b.ctx_ref().value_type(args[factor.input]).clone();
                let storage_elem = stencil::type_element(&column_storage_ty)
                    .unwrap_or_else(|| Type::tensor(vec![z_interior + 2 * z_halo], Type::f32()));
                // The operand's own z halo (forwarded interior temps have none).
                let elem_len = storage_elem.shape().map(|s| s[0]).unwrap_or(z_interior);
                let own_halo = (elem_len - z_interior) / 2;
                let access = stencil::access(&mut b, args[factor.input], &[dx, dy], storage_elem);
                let window = tensor::extract_slice(&mut b, access, own_halo + dz, z_interior);
                value = Some(match value {
                    Some(prev) => arith::mulf(&mut b, prev, window),
                    None => window,
                });
            }
            let window = value.expect("term has at least one factor");
            let coeff = arith::constant_f32(&mut b, term.coeff, column_ty.clone());
            let scaled = arith::mulf(&mut b, window, coeff);
            acc = Some(match acc {
                Some(prev) => arith::addf(&mut b, prev, scaled),
                None => scaled,
            });
        }
        let value =
            acc.unwrap_or_else(|| arith::constant_f32(&mut b, combo.constant, column_ty.clone()));
        results.push(value);
    }
    stencil::build_return(ctx, body, results);
}

/// Convenience: reads the cached combination attribute of an apply.
pub fn apply_combinations(ctx: &IrContext, apply: OpId) -> Option<Vec<LinearCombination>> {
    ctx.attr(apply, COMBINATIONS_ATTR).and_then(combinations_from_attr)
}

/// Convenience accessor for a float attribute stored by these passes.
pub fn float_bits(value: f32) -> FloatBits {
    FloatBits::new(f64::from(value))
}

#[cfg(test)]
mod tests {
    use super::*;
    use wse_frontends::{benchmarks::Benchmark, emit_stencil_ir};
    use wse_ir::verify;

    fn run_group1(benchmark: Benchmark) -> (IrContext, OpId) {
        let ir = emit_stencil_ir(&benchmark.tiny_program()).unwrap();
        let mut ctx = ir.ctx;
        let (x, y) = (benchmark.tiny_program().grid.x, benchmark.tiny_program().grid.y);
        DistributeStencil { width: x, height: y }.run(&mut ctx, ir.module).unwrap();
        TensorizeZ.run(&mut ctx, ir.module).unwrap();
        (ctx, ir.module)
    }

    #[test]
    fn combination_attr_roundtrip() {
        let combos = vec![LinearCombination {
            terms: vec![crate::analysis::Term {
                input: 1,
                offset: vec![1, 0, -2],
                coeff: 0.25,
                factor2: None,
            }],
            constant: 0.5,
        }];
        let attr = combinations_to_attr(&combos);
        assert_eq!(combinations_from_attr(&attr), Some(combos));
    }

    #[test]
    fn product_term_attr_roundtrip() {
        let combos = vec![LinearCombination {
            terms: vec![
                crate::analysis::Term {
                    input: 0,
                    offset: vec![0, 0, 0],
                    coeff: -0.5,
                    factor2: Some(Factor { input: 1, offset: vec![1, 0, -1] }),
                },
                crate::analysis::Term {
                    input: 1,
                    offset: vec![0, 1, 0],
                    coeff: 2.0,
                    factor2: None,
                },
            ],
            constant: 0.0,
        }];
        let attr = combinations_to_attr(&combos);
        assert_eq!(combinations_from_attr(&attr), Some(combos));
    }

    #[test]
    fn exchange_widths_follow_the_radius() {
        let ir = emit_stencil_ir(&Benchmark::Seismic25.tiny_program()).unwrap();
        let apply = ir.ctx.walk_named(ir.module, stencil::APPLY)[0];
        let combos = analyze_apply(&ir.ctx, apply).unwrap();
        let exchanges = exchanges_for(&combos);
        assert_eq!(exchanges.len(), 4);
        assert!(exchanges.iter().all(|e| e.width == 4), "25-pt stencil needs width-4 halos");
    }

    #[test]
    fn distribute_inserts_swaps() {
        let ir = emit_stencil_ir(&Benchmark::Jacobian.tiny_program()).unwrap();
        let mut ctx = ir.ctx;
        DistributeStencil { width: 6, height: 6 }.run(&mut ctx, ir.module).unwrap();
        let swaps = ctx.walk_named(ir.module, dmp::SWAP);
        assert_eq!(swaps.len(), 1);
        assert_eq!(dmp::swap_topology(&ctx, swaps[0]), Some(Topology::new(6, 6)));
        assert_eq!(dmp::swap_exchanges(&ctx, swaps[0]).len(), 4);
        // The apply now consumes the swap's result.
        let apply = ctx.walk_named(ir.module, stencil::APPLY)[0];
        assert_eq!(ctx.defining_op(ctx.operand(apply, 0)), Some(swaps[0]));
        assert!(verify(&ctx, ir.module, &wse_csl::register_all()).is_empty());
    }

    #[test]
    fn local_only_apply_gets_no_swap() {
        // The acoustic benchmark's first equation (u_prev = u) has no remote
        // accesses, so only the second apply gets a swap.
        let ir = emit_stencil_ir(&Benchmark::Acoustic.tiny_program()).unwrap();
        let mut ctx = ir.ctx;
        DistributeStencil { width: 7, height: 7 }.run(&mut ctx, ir.module).unwrap();
        assert_eq!(ctx.walk_named(ir.module, dmp::SWAP).len(), 1);
    }

    #[test]
    fn tensorize_rewrites_types_and_bodies() {
        let (ctx, module) = run_group1(Benchmark::Jacobian);
        let registry = wse_csl::register_all();
        let errors = verify(&ctx, module, &registry);
        assert!(errors.is_empty(), "verification failed: {errors:?}");
        let apply = ctx.walk_named(module, stencil::APPLY)[0];
        // Result is now a 2-D temp of tensors.
        let result_ty = ctx.value_type(ctx.result(apply, 0));
        let bounds = stencil::type_bounds(result_ty).unwrap();
        assert_eq!(bounds.rank(), 2);
        let elem = stencil::type_element(result_ty).unwrap();
        assert_eq!(elem, Type::tensor(vec![12], Type::f32()));
        // Accesses are now 2-D and z-offsets became extract_slices.
        for offset in stencil::collect_access_offsets(&ctx, apply) {
            assert_eq!(offset.len(), 2);
        }
        assert!(!ctx.walk_named(module, tensor::EXTRACT_SLICE).is_empty());
        // The cached combination analysis survives on the op.
        assert_eq!(apply_combinations(&ctx, apply).unwrap()[0].terms.len(), 6);
        assert_eq!(ctx.attr_int(apply, "z_interior"), Some(12));
        assert_eq!(ctx.attr_int(apply, "z_halo"), Some(1));
    }

    #[test]
    fn tensorize_all_benchmarks_verify() {
        for benchmark in Benchmark::ALL {
            let (ctx, module) = run_group1(benchmark);
            let errors = verify(&ctx, module, &wse_csl::register_all());
            assert!(errors.is_empty(), "{}: {errors:?}", benchmark.name());
        }
    }
}
