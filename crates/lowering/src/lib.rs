//! # wse-lowering — the stencil-to-CSL lowering pipeline
//!
//! This crate implements the transformation groups of the paper
//! (Section 5): stencil-level optimizations, decomposition onto the PE
//! grid, tensorization of the z dimension, conversion to the
//! `csl_stencil` dialect with chunked communication, wrapping for staged
//! compilation, lowering to the actor execution model, FMA fusion, DSD
//! lowering and finally emission of the layout/program `csl.module`s from
//! which CSL source text is printed.
//!
//! The entry point is [`pipeline::lower_program`].

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod analysis;
pub mod decompose;
pub mod linalg_to_csl;
pub mod opt_passes;
pub mod pipeline;
pub mod to_actors;
pub mod to_csl_stencil;

pub use analysis::{analyze_apply, AnalysisError, LinearCombination, Term};
pub use pipeline::{
    build_pass_manager, lower_module_in, lower_program, LowerError, LoweredProgram,
    PipelineOptions, WseTarget,
};
