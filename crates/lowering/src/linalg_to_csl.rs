//! Group 5 compute lowering (Section 5.5 of the paper).
//!
//! * `linalg-fuse-multiply-add` recognizes a `linalg.mul` whose result
//!   buffer immediately feeds a `linalg.add` and fuses the pair into a
//!   `linalg.fmac`, which ultimately becomes the `@fmacs` CSL builtin.
//! * `convert-linalg-to-csl` lowers `linalg` operations on `memref` views
//!   into CSL DSD builtins (`@fadds`, `@fmuls`, `@fmacs`, `@fmovs`) over
//!   `csl.get_mem_dsd` descriptors, and folds `memref` views into DSD
//!   views.

use wse_csl::csl;
use wse_dialects::{arith, linalg, memref};
use wse_ir::{Attribute, IrContext, OpBuilder, OpId, OpSpec, Pass, PassResult, Type, ValueId};

/// Fuses `linalg.mul` + `linalg.add` pairs into `linalg.fmac`.
#[derive(Debug, Default, Clone, Copy)]
pub struct LinalgFuseMultiplyAdd;

impl Pass for LinalgFuseMultiplyAdd {
    fn name(&self) -> &str {
        "linalg-fuse-multiply-add"
    }

    fn run(&self, ctx: &mut IrContext, module: OpId) -> PassResult {
        for mul in ctx.walk_named(module, linalg::MUL) {
            if !ctx.op_is_live(mul) {
                continue;
            }
            // Only coefficient muls fuse.  A data×data multiply (product
            // kernels from `decompose-products`) must stay a plain
            // `@fmuls`: the fmac fallback lowering squares through its
            // second operand in place, which is destructive when that
            // operand is a live field column rather than a splat buffer.
            if ctx.attr(mul, "coefficient").is_none() {
                continue;
            }
            let Some(block) = ctx.parent_block(mul) else { continue };
            let Some(index) = ctx.op_index_in_block(mul) else { continue };
            let Some(&add) = ctx.block_ops(block).get(index + 1) else { continue };
            if ctx.op_name(add) != linalg::ADD {
                continue;
            }
            // mul: (src, coeff, scratch); add: (dest, scratch, dest).
            let scratch = linalg::output(ctx, mul).expect("mul has a destination");
            let add_inputs = linalg::inputs(ctx, add).to_vec();
            let add_out = linalg::output(ctx, add).expect("add has a destination");
            if add_inputs.len() != 2 || !add_inputs.contains(&scratch) {
                continue;
            }
            let acc = if add_inputs[0] == scratch { add_inputs[1] } else { add_inputs[0] };
            if acc != add_out {
                continue;
            }
            let mul_inputs = linalg::inputs(ctx, mul).to_vec();
            let mut b = OpBuilder::before(ctx, mul);
            let fmac = linalg::fmac(&mut b, acc, mul_inputs[0], mul_inputs[1], add_out);
            if let Some(coeff) = ctx.attr(mul, "coefficient").cloned() {
                ctx.set_attr(fmac, "coefficient", coeff);
            }
            ctx.erase_op(add);
            ctx.erase_op(mul);
        }
        Ok(())
    }
}

/// Lowers `linalg` + `memref` views to CSL DSD builtins.
#[derive(Debug, Default, Clone, Copy)]
pub struct ConvertLinalgToCsl;

impl ConvertLinalgToCsl {
    /// Resolves a memref value to `(root buffer, static offset, dynamic
    /// offset, length)` by walking subview chains.
    fn resolve_view(ctx: &IrContext, value: ValueId) -> (ValueId, i64, Option<ValueId>, i64) {
        let len = ctx.value_type(value).shape().map(|s| s[0]).unwrap_or(1);
        match ctx.defining_op(value) {
            Some(op) if ctx.op_name(op) == memref::SUBVIEW => {
                let source = ctx.operand(op, 0);
                let static_offset = memref::subview_offset(ctx, op).unwrap_or(0);
                let dynamic = ctx.operands(op).get(1).copied();
                let (root, base, base_dyn, _) = Self::resolve_view(ctx, source);
                // Nested dynamic offsets do not occur in generated code.
                (root, base + static_offset, dynamic.or(base_dyn), len)
            }
            _ => (value, 0, None, len),
        }
    }

    /// Materializes a DSD for a memref view right before `before`.
    fn dsd_for(ctx: &mut IrContext, before: OpId, value: ValueId) -> ValueId {
        let (root, offset, dynamic, len) = Self::resolve_view(ctx, value);
        let mut b = OpBuilder::before(ctx, before);
        match dynamic {
            Some(dyn_offset) => csl::get_mem_dsd_dynamic(&mut b, root, dyn_offset, offset, len),
            None => csl::get_mem_dsd(&mut b, root, offset, len),
        }
    }

    /// Reads the splat value of a coefficient buffer (`csl.constants`).
    fn splat_value(ctx: &IrContext, value: ValueId) -> Option<f64> {
        let (root, _, _, _) = Self::resolve_view(ctx, value);
        let def = ctx.defining_op(root)?;
        if ctx.op_name(def) != csl::CONSTANTS {
            return None;
        }
        ctx.attr(def, "value").and_then(Attribute::as_float)
    }
}

impl Pass for ConvertLinalgToCsl {
    fn name(&self) -> &str {
        "convert-linalg-to-csl"
    }

    fn run(&self, ctx: &mut IrContext, module: OpId) -> PassResult {
        let targets: Vec<OpId> = ctx
            .walk(module)
            .into_iter()
            .filter(|&op| ctx.op_name(op).starts_with("linalg."))
            .collect();
        for op in targets {
            if !ctx.op_is_live(op) {
                continue;
            }
            match ctx.op_name(op).to_string().as_str() {
                linalg::FILL => {
                    // @fmovs(dest_dsd, scalar).
                    let scalar = ctx.operand(op, 0);
                    let dest = linalg::output(ctx, op).expect("fill destination");
                    let dest_dsd = Self::dsd_for(ctx, op, dest);
                    let mut b = OpBuilder::before(ctx, op);
                    b.insert(OpSpec::new(csl::FMOVS).operands([dest_dsd, scalar]));
                    ctx.erase_op(op);
                }
                linalg::COPY => {
                    let src = ctx.operand(op, 0);
                    let dest = linalg::output(ctx, op).expect("copy destination");
                    let src_dsd = Self::dsd_for(ctx, op, src);
                    let dest_dsd = Self::dsd_for(ctx, op, dest);
                    let mut b = OpBuilder::before(ctx, op);
                    b.insert(OpSpec::new(csl::FMOVS).operands([dest_dsd, src_dsd]));
                    ctx.erase_op(op);
                }
                linalg::MUL | linalg::ADD | linalg::SUB => {
                    let name = match ctx.op_name(op) {
                        linalg::MUL => csl::FMULS,
                        linalg::SUB => csl::FSUBS,
                        _ => csl::FADDS,
                    };
                    let inputs = linalg::inputs(ctx, op).to_vec();
                    let dest = linalg::output(ctx, op).expect("binary destination");
                    let a = Self::dsd_for(ctx, op, inputs[0]);
                    let c = Self::dsd_for(ctx, op, inputs[1]);
                    let d = Self::dsd_for(ctx, op, dest);
                    let mut b = OpBuilder::before(ctx, op);
                    let new = b.insert(OpSpec::new(name).operands([d, a, c]));
                    if let Some(coeff) = ctx.attr(op, "coefficient").cloned() {
                        ctx.set_attr(new, "coefficient", coeff);
                    }
                    ctx.erase_op(op);
                }
                linalg::FMAC => {
                    // (acc, a, coeff_buf, out) -> @fmacs(out, acc, a, coeff).
                    let operands = ctx.operands(op).to_vec();
                    let (acc, a, coeff_buf, out) =
                        (operands[0], operands[1], operands[2], operands[3]);
                    let coeff = Self::splat_value(ctx, coeff_buf)
                        .or_else(|| ctx.attr(op, "coefficient").and_then(Attribute::as_float));
                    let acc_dsd = Self::dsd_for(ctx, op, acc);
                    let a_dsd = Self::dsd_for(ctx, op, a);
                    let out_dsd = Self::dsd_for(ctx, op, out);
                    let mut b = OpBuilder::before(ctx, op);
                    match coeff {
                        Some(value) => {
                            let scalar = arith::constant_f32(&mut b, value as f32, Type::f32());
                            b.insert(
                                OpSpec::new(csl::FMACS).operands([out_dsd, acc_dsd, a_dsd, scalar]),
                            );
                        }
                        None => {
                            // Fall back to the unfused pair.
                            let coeff_dsd = Self::dsd_for(ctx, op, coeff_buf);
                            let mut b = OpBuilder::before(ctx, op);
                            b.insert(OpSpec::new(csl::FMULS).operands([a_dsd, a_dsd, coeff_dsd]));
                            b.insert(OpSpec::new(csl::FADDS).operands([out_dsd, acc_dsd, a_dsd]));
                        }
                    }
                    ctx.erase_op(op);
                }
                _ => {}
            }
        }

        // Clean up memref views that no longer have users.
        loop {
            let mut changed = false;
            for op in ctx.walk(module) {
                if !ctx.op_is_live(op) {
                    continue;
                }
                let name = ctx.op_name(op);
                if (name == memref::SUBVIEW || name == memref::ALLOC)
                    && ctx.results(op).iter().all(|&r| !ctx.has_uses(r))
                {
                    ctx.erase_op(op);
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wse_dialects::builtin;
    use wse_ir::verify;

    fn setup() -> (IrContext, OpId, ValueId, ValueId, ValueId, ValueId) {
        let mut ctx = IrContext::new();
        let (module, body) = builtin::module(&mut ctx);
        let buf_ty = Type::memref(vec![16], Type::f32());
        let mut b = OpBuilder::at_end(&mut ctx, body);
        let src = csl::zeros(&mut b, "src", buf_ty.clone());
        let coeff = csl::constants(&mut b, "coeff0", buf_ty.clone(), 0.25);
        let scratch = csl::zeros(&mut b, "scratch", buf_ty.clone());
        let acc = csl::zeros(&mut b, "acc", buf_ty);
        (ctx, module, src, coeff, scratch, acc)
    }

    #[test]
    fn mul_add_pair_becomes_fmac_then_fmacs() {
        let (mut ctx, module, src, coeff, scratch, acc) = setup();
        let body = builtin::module_body(&ctx, module);
        let mut b = OpBuilder::at_end(&mut ctx, body);
        let m = linalg::mul(&mut b, src, coeff, scratch);
        b.ctx().set_attr(m, "coefficient", Attribute::f32(0.25));
        linalg::add(&mut b, acc, scratch, acc);

        LinalgFuseMultiplyAdd.run(&mut ctx, module).unwrap();
        assert_eq!(ctx.walk_named(module, linalg::FMAC).len(), 1);
        assert!(ctx.walk_named(module, linalg::MUL).is_empty());
        assert!(ctx.walk_named(module, linalg::ADD).is_empty());

        ConvertLinalgToCsl.run(&mut ctx, module).unwrap();
        let fmacs = ctx.walk_named(module, csl::FMACS);
        assert_eq!(fmacs.len(), 1);
        // The scalar coefficient operand carries the splat value.
        let scalar = ctx.operand(fmacs[0], 3);
        let def = ctx.defining_op(scalar).unwrap();
        assert_eq!(arith::constant_float_value(&ctx, def), Some(0.25));
        assert!(verify(&ctx, module, &wse_csl::register_all()).is_empty());
        assert!(ctx.walk_named(module, linalg::FMAC).is_empty());
    }

    #[test]
    fn unfused_ops_become_fmuls_and_fadds() {
        let (mut ctx, module, src, coeff, scratch, acc) = setup();
        let body = builtin::module_body(&ctx, module);
        let mut b = OpBuilder::at_end(&mut ctx, body);
        linalg::mul(&mut b, src, coeff, scratch);
        linalg::copy(&mut b, scratch, acc);
        // No fusion pass: direct conversion.
        ConvertLinalgToCsl.run(&mut ctx, module).unwrap();
        assert_eq!(ctx.walk_named(module, csl::FMULS).len(), 1);
        assert_eq!(ctx.walk_named(module, csl::FMOVS).len(), 1);
        assert!(verify(&ctx, module, &wse_csl::register_all()).is_empty());
    }

    #[test]
    fn subviews_fold_into_dsd_offsets() {
        let (mut ctx, module, src, _coeff, _scratch, acc) = setup();
        let body = builtin::module_body(&ctx, module);
        let mut b = OpBuilder::at_end(&mut ctx, body);
        let src_view = memref::subview(&mut b, src, 2, 8);
        let acc_view = memref::subview(&mut b, acc, 4, 8);
        linalg::copy(&mut b, src_view, acc_view);
        ConvertLinalgToCsl.run(&mut ctx, module).unwrap();
        let dsds = ctx.walk_named(module, csl::GET_MEM_DSD);
        assert_eq!(dsds.len(), 2);
        let offsets: Vec<i64> = dsds.iter().map(|&d| ctx.attr_int(d, "offset").unwrap()).collect();
        assert!(offsets.contains(&2));
        assert!(offsets.contains(&4));
        // The subviews themselves are gone.
        assert!(ctx.walk_named(module, memref::SUBVIEW).is_empty());
        assert!(verify(&ctx, module, &wse_csl::register_all()).is_empty());
    }
}
