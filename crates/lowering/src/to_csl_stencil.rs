//! Group 2 transformations: realize placement and communication on the WSE
//! (Section 5.2 of the paper).
//!
//! * `convert-stencil-to-csl-stencil` replaces `dmp.swap` + `stencil.apply`
//!   pairs with `csl_stencil.apply` operations whose first region reduces
//!   incoming chunks of remote data and whose second region combines the
//!   accumulator with locally held data (Listing 4).  Coefficients of
//!   remote terms are applied in the receive region — the "coefficient
//!   promotion into communication" optimization of Section 5.7.
//! * `wrap-in-csl-wrapper` packages the kernel together with the layout
//!   metaprogram parameters required by CSL's staged compilation.

use wse_csl::{csl_stencil, csl_wrapper};
use wse_dialects::{arith, dmp, stencil, tensor};
use wse_ir::{Attribute, IrContext, OpBuilder, OpId, Pass, PassError, PassResult, Type, ValueId};

use crate::analysis::LinearCombination;
use crate::decompose::{
    apply_combinations, combinations_to_attr, exchanges_for, COMBINATIONS_ATTR,
};

/// Options controlling the stencil → csl_stencil conversion.
#[derive(Debug, Clone, Copy)]
pub struct CslStencilOptions {
    /// Number of chunks each halo exchange is split into.
    pub num_chunks: i64,
    /// Whether remote-term coefficients are applied while receiving chunks
    /// (coefficient promotion, Section 5.7).  When disabled the receive
    /// region only packs data and coefficients are applied in the
    /// done-exchange region.
    pub promote_coefficients: bool,
}

impl Default for CslStencilOptions {
    fn default() -> Self {
        Self { num_chunks: 1, promote_coefficients: true }
    }
}

/// Converts `stencil.apply` + `dmp.swap` into `csl_stencil.apply`.
#[derive(Debug, Default, Clone, Copy)]
pub struct ConvertStencilToCslStencil {
    /// Conversion options.
    pub options: CslStencilOptions,
}

impl Pass for ConvertStencilToCslStencil {
    fn name(&self) -> &str {
        "convert-stencil-to-csl-stencil"
    }

    fn run(&self, ctx: &mut IrContext, module: OpId) -> PassResult {
        for apply in ctx.walk_named(module, stencil::APPLY) {
            if !ctx.op_is_live(apply) {
                continue;
            }
            let combos = apply_combinations(ctx, apply).ok_or_else(|| {
                PassError::new(self.name(), "apply is missing the cached stencil_terms analysis")
            })?;
            if combos.iter().all(|c| c.remote_terms().is_empty()) && ctx.results(apply).len() <= 1 {
                // Purely local single-output compute stays a stencil.apply.
                // Multi-output applies still go through the conversion so
                // they are split per output: the actor lowering executes
                // one kernel (and one store) per apply result.
                continue;
            }
            convert_apply(ctx, apply, &combos, self.options)
                .map_err(|m| PassError::new(self.name(), m))?;
        }
        Ok(())
    }
}

fn convert_apply(
    ctx: &mut IrContext,
    apply: OpId,
    combos: &[LinearCombination],
    options: CslStencilOptions,
) -> Result<(), String> {
    let z_interior = ctx.attr_int(apply, "z_interior").ok_or("missing z_interior")?;
    let z_halo = ctx.attr_int(apply, "z_halo").unwrap_or(0);
    let num_chunks = options.num_chunks.max(1);
    let chunk = if z_interior % num_chunks == 0 { z_interior / num_chunks } else { z_interior };
    let num_chunks = z_interior / chunk;
    let operands = ctx.operands(apply).to_vec();
    let results = ctx.results(apply).to_vec();

    // Resolve dmp.swap producers: the csl_stencil.apply consumes the
    // original (pre-swap) temps; the swap op itself is consumed.
    let mut swaps_to_erase = Vec::new();
    let raw_inputs: Vec<ValueId> = operands
        .iter()
        .map(|&operand| match ctx.defining_op(operand) {
            Some(def) if ctx.op_name(def) == dmp::SWAP => {
                swaps_to_erase.push(def);
                ctx.operand(def, 0)
            }
            _ => operand,
        })
        .collect();

    for (result_idx, combo) in combos.iter().enumerate() {
        let result = results[result_idx];
        let result_ty = ctx.value_type(result).clone();
        let remote: Vec<_> = combo.remote_terms().into_iter().cloned().collect();
        let local: Vec<_> = combo.local_terms().into_iter().cloned().collect();
        let column_ty = Type::tensor(vec![z_interior], Type::f32());

        if remote.is_empty() {
            // Keep this output as a plain (local-only) stencil.apply.
            let mut b = OpBuilder::before(ctx, apply);
            let (new_apply, body) =
                stencil::build_apply(&mut b, raw_inputs.clone(), vec![result_ty]);
            ctx.set_attr(
                new_apply,
                COMBINATIONS_ATTR,
                combinations_to_attr(std::slice::from_ref(combo)),
            );
            ctx.set_attr(new_apply, "z_interior", Attribute::int(z_interior));
            ctx.set_attr(new_apply, "z_halo", Attribute::int(z_halo));
            emit_local_body(ctx, body, &local, z_interior, z_halo, true);
            ctx.replace_all_uses(result, ctx.result(new_apply, 0));
            continue;
        }

        // Each remote *factor* needs a staged column; product terms (bare
        // two-factor products after decompose-products) contribute one
        // entry per remote factor, with no coefficient promotion — their
        // coefficient is 1 by construction.
        struct SlotEntry {
            input: usize,
            dx: i64,
            dy: i64,
            coeff: f32,
            promote: bool,
        }
        let mut slot_entries: Vec<SlotEntry> = Vec::new();
        for term in &remote {
            if term.factor2.is_some() {
                for f in term.factors() {
                    let dx = f.offset.first().copied().unwrap_or(0);
                    let dy = f.offset.get(1).copied().unwrap_or(0);
                    if dx != 0 || dy != 0 {
                        slot_entries.push(SlotEntry {
                            input: f.input,
                            dx,
                            dy,
                            coeff: 1.0,
                            promote: false,
                        });
                    }
                }
            } else {
                slot_entries.push(SlotEntry {
                    input: term.input,
                    dx: term.offset.first().copied().unwrap_or(0),
                    dy: term.offset.get(1).copied().unwrap_or(0),
                    coeff: term.coeff,
                    promote: options.promote_coefficients,
                });
            }
        }

        let exchanges = exchanges_for(std::slice::from_ref(combo));
        let slots = slot_entries.len() as i64;
        let chunk_buffer_ty = Type::tensor(vec![slots, chunk], Type::f32());

        let mut b = OpBuilder::before(ctx, apply);
        let acc_init = arith::constant_f32(&mut b, 0.0, column_ty.clone());
        let config = csl_stencil::ApplyConfig { exchanges, num_chunks, z_extent: z_interior };
        let (new_apply, recv_block, done_block) = csl_stencil::build_apply(
            &mut b,
            raw_inputs.clone(),
            acc_init,
            &config,
            chunk_buffer_ty,
            vec![result_ty],
        );
        ctx.set_attr(
            new_apply,
            COMBINATIONS_ATTR,
            combinations_to_attr(std::slice::from_ref(combo)),
        );
        ctx.set_attr(new_apply, "z_interior", Attribute::int(z_interior));
        ctx.set_attr(new_apply, "z_halo", Attribute::int(z_halo));
        ctx.set_attr(new_apply, "chunk_size", Attribute::int(chunk));
        // Record which input each remote term belongs to.  The actor
        // lowering now derives its (deduplicated) receive slots from the
        // cached combination analysis directly; the attribute is kept as
        // human-readable IR metadata only (it also pins the golden
        // snapshots), not read by any pass.
        ctx.set_attr(
            new_apply,
            "slot_inputs",
            Attribute::IndexArray(slot_entries.iter().map(|e| e.input as i64).collect()),
        );

        // ------------------------------------------------- receive region
        {
            let args = ctx.block_args(recv_block).to_vec();
            let (buf, offset_arg, acc) = (args[0], args[1], args[2]);
            let chunk_ty = Type::tensor(vec![chunk], Type::f32());
            let mut rb = OpBuilder::at_end(ctx, recv_block);
            let mut partial: Option<ValueId> = None;
            for (slot, entry) in slot_entries.iter().enumerate() {
                let access =
                    csl_stencil::access(&mut rb, buf, &[entry.dx, entry.dy], chunk_ty.clone());
                let access_op = rb.ctx_ref().defining_op(access).expect("access op");
                rb.ctx().set_attr(access_op, "slot", Attribute::int(slot as i64));
                rb.ctx().set_attr(access_op, "input", Attribute::int(entry.input as i64));
                let value = if entry.promote {
                    let coeff = arith::constant_f32(&mut rb, entry.coeff, chunk_ty.clone());
                    let scaled = arith::mulf(&mut rb, access, coeff);
                    let op = rb.ctx_ref().defining_op(scaled).expect("mul op");
                    rb.ctx().set_attr(op, "coefficient", Attribute::f32(entry.coeff));
                    scaled
                } else {
                    access
                };
                partial = Some(match partial {
                    Some(prev) => arith::addf(&mut rb, prev, value),
                    None => value,
                });
            }
            let partial = partial.expect("at least one remote term");
            let packed = tensor::insert_slice(&mut rb, partial, acc, offset_arg, chunk);
            csl_stencil::build_yield(ctx, recv_block, vec![packed]);
        }

        // ------------------------------------------------- done region
        {
            let args = ctx.block_args(done_block).to_vec();
            let acc = *args.last().expect("acc argument");
            emit_done_body(ctx, done_block, acc, &local, &remote, z_interior, z_halo, options);
        }

        ctx.replace_all_uses(result, ctx.result(new_apply, 0));
    }

    ctx.erase_op(apply);
    for swap in swaps_to_erase {
        if ctx.op_is_live(swap) && !ctx.results(swap).iter().any(|&r| ctx.has_uses(r)) {
            ctx.erase_op(swap);
        }
    }
    Ok(())
}

/// Emits the done-exchange region: local terms are reduced on top of the
/// accumulator (and, when coefficient promotion is disabled, the remote
/// contribution sitting in the accumulator is scaled here instead).
#[allow(clippy::too_many_arguments)]
fn emit_done_body(
    ctx: &mut IrContext,
    block: wse_ir::BlockId,
    acc: ValueId,
    local: &[crate::analysis::Term],
    _remote: &[crate::analysis::Term],
    z_interior: i64,
    z_halo: i64,
    _options: CslStencilOptions,
) {
    let args = ctx.block_args(block).to_vec();
    let column_ty = Type::tensor(vec![z_interior], Type::f32());
    let mut b = OpBuilder::at_end(ctx, block);
    let mut value = acc;
    for term in local {
        let window = emit_factor_windows(&mut b, term, &args, z_interior, z_halo, false);
        let coeff = arith::constant_f32(&mut b, term.coeff, column_ty.clone());
        let scaled = arith::mulf(&mut b, window, coeff);
        if term.factor2.is_none() {
            let op = b.ctx_ref().defining_op(scaled).expect("mul op");
            b.ctx().set_attr(op, "coefficient", Attribute::f32(term.coeff));
        }
        value = arith::addf(&mut b, value, scaled);
    }
    csl_stencil::build_yield(ctx, block, vec![value]);
}

/// Emits one windowed column read per factor of `term` and multiplies them
/// together (a single window for linear terms).  `use_stencil_access`
/// selects `stencil.access` (local-only applies) over `csl_stencil.access`.
fn emit_factor_windows(
    b: &mut OpBuilder<'_>,
    term: &crate::analysis::Term,
    args: &[ValueId],
    z_interior: i64,
    z_halo: i64,
    use_stencil_access: bool,
) -> ValueId {
    let mut value: Option<ValueId> = None;
    for factor in term.factors() {
        let dz = factor.offset.get(2).copied().unwrap_or(0);
        let input = args[factor.input];
        let storage_elem = stencil::type_element(b.ctx_ref().value_type(input))
            .unwrap_or_else(|| Type::tensor(vec![z_interior + 2 * z_halo], Type::f32()));
        let elem_len = storage_elem.shape().map(|s| s[0]).unwrap_or(z_interior);
        let own_halo = (elem_len - z_interior) / 2;
        let access = if use_stencil_access {
            stencil::access(b, input, &[0, 0], storage_elem)
        } else {
            csl_stencil::access(b, input, &[0, 0], storage_elem)
        };
        let window = tensor::extract_slice(b, access, own_halo + dz, z_interior);
        value = Some(match value {
            Some(prev) => arith::mulf(b, prev, window),
            None => window,
        });
    }
    value.expect("term has at least one factor")
}

/// Emits a local-only apply body (used for outputs without remote terms).
fn emit_local_body(
    ctx: &mut IrContext,
    block: wse_ir::BlockId,
    local: &[crate::analysis::Term],
    z_interior: i64,
    z_halo: i64,
    use_stencil_return: bool,
) {
    let args = ctx.block_args(block).to_vec();
    let column_ty = Type::tensor(vec![z_interior], Type::f32());
    let mut b = OpBuilder::at_end(ctx, block);
    let mut value: Option<ValueId> = None;
    for term in local {
        let window = emit_factor_windows(&mut b, term, &args, z_interior, z_halo, true);
        let coeff = arith::constant_f32(&mut b, term.coeff, column_ty.clone());
        let scaled = arith::mulf(&mut b, window, coeff);
        value = Some(match value {
            Some(prev) => arith::addf(&mut b, prev, scaled),
            None => scaled,
        });
    }
    let value = value.unwrap_or_else(|| arith::constant_f32(&mut b, 0.0, column_ty));
    if use_stencil_return {
        stencil::build_return(ctx, block, vec![value]);
    } else {
        csl_stencil::build_yield(ctx, block, vec![value]);
    }
}

// --------------------------------------------------------------------------
// wrap-in-csl-wrapper
// --------------------------------------------------------------------------

/// Wraps the kernel function in a `csl_wrapper.module` carrying the
/// program-wide parameters needed by the layout metaprogram.
#[derive(Debug, Clone, Copy)]
pub struct WrapInCslWrapper {
    /// PE-grid extent in x.
    pub width: i64,
    /// PE-grid extent in y.
    pub height: i64,
}

impl Pass for WrapInCslWrapper {
    fn name(&self) -> &str {
        "wrap-in-csl-wrapper"
    }

    fn run(&self, ctx: &mut IrContext, module: OpId) -> PassResult {
        if csl_wrapper::find_wrapper(ctx, module).is_some() {
            return Ok(());
        }
        let funcs = ctx.walk_named(module, wse_dialects::func::FUNC);
        let Some(&func) = funcs.first() else {
            return Err(PassError::new(self.name(), "module contains no kernel function"));
        };

        // Gather parameters from the csl_stencil applies.
        let applies = ctx.walk_named(module, csl_stencil::APPLY);
        let mut z_dim = 1;
        let mut pattern = 1;
        let mut num_chunks = 1;
        // 0 is the "no communicating apply declared a chunk size" sentinel;
        // a real chunk size of 1 (z split into z chunks) must be preserved,
        // so 1 cannot double as the sentinel.
        let mut chunk_size = 0;
        let mut fields = 0;
        for &apply in &applies {
            z_dim = z_dim.max(ctx.attr_int(apply, "z_interior").unwrap_or(1));
            num_chunks = num_chunks.max(csl_stencil::num_chunks(ctx, apply));
            chunk_size = chunk_size.max(ctx.attr_int(apply, "chunk_size").unwrap_or(0));
            pattern = pattern
                .max(csl_stencil::swaps_of(ctx, apply).iter().map(|e| e.width).max().unwrap_or(1));
            fields += 1;
        }
        for &apply in &ctx.walk_named(module, stencil::APPLY) {
            z_dim = z_dim.max(ctx.attr_int(apply, "z_interior").unwrap_or(1));
        }
        if chunk_size == 0 {
            chunk_size = z_dim;
        }

        let params = csl_wrapper::WrapperParams {
            width: self.width,
            height: self.height,
            z_dim,
            pattern,
            num_chunks,
            chunk_size,
            fields: fields.max(1),
        };
        let module_body = wse_dialects::builtin::module_body(ctx, module);
        let func_name = wse_dialects::func::func_name(ctx, func).unwrap_or("kernel").to_string();
        let mut b = OpBuilder::at_start(ctx, module_body);
        let (wrapper, layout, program) = csl_wrapper::build_module(&mut b, &func_name, &params);
        let mut lb = OpBuilder::at_end(ctx, layout);
        csl_wrapper::import(&mut lb, "<memcpy/get_params>", &["width", "height"]);
        csl_wrapper::import(&mut lb, "routes.csl", &["pattern", "peWidth", "peHeight"]);
        csl_wrapper::build_yield(ctx, layout, vec![]);
        // Move the kernel function into the wrapper's program region.
        ctx.detach_op(func);
        ctx.insert_op(program, 0, func);
        csl_wrapper::build_yield(ctx, program, vec![]);
        let _ = wrapper;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decompose::{DistributeStencil, TensorizeZ};
    use crate::opt_passes::StencilInlining;
    use wse_frontends::{benchmarks::Benchmark, emit_stencil_ir};
    use wse_ir::verify;

    fn lower_to_csl_stencil(benchmark: Benchmark, num_chunks: i64) -> (IrContext, OpId) {
        let program = benchmark.tiny_program();
        let ir = emit_stencil_ir(&program).unwrap();
        let mut ctx = ir.ctx;
        StencilInlining.run(&mut ctx, ir.module).unwrap();
        DistributeStencil { width: program.grid.x, height: program.grid.y }
            .run(&mut ctx, ir.module)
            .unwrap();
        TensorizeZ.run(&mut ctx, ir.module).unwrap();
        ConvertStencilToCslStencil {
            options: CslStencilOptions { num_chunks, promote_coefficients: true },
        }
        .run(&mut ctx, ir.module)
        .unwrap();
        WrapInCslWrapper { width: program.grid.x, height: program.grid.y }
            .run(&mut ctx, ir.module)
            .unwrap();
        (ctx, ir.module)
    }

    #[test]
    fn jacobian_becomes_csl_stencil_apply() {
        let (ctx, module) = lower_to_csl_stencil(Benchmark::Jacobian, 2);
        let errors = verify(&ctx, module, &wse_csl::register_all());
        assert!(errors.is_empty(), "verification failed: {errors:?}");
        let applies = ctx.walk_named(module, csl_stencil::APPLY);
        assert_eq!(applies.len(), 1);
        let apply = applies[0];
        assert_eq!(csl_stencil::num_chunks(&ctx, apply), 2);
        assert_eq!(csl_stencil::swaps_of(&ctx, apply).len(), 4);
        // dmp.swap is consumed by the conversion.
        assert!(ctx.walk_named(module, dmp::SWAP).is_empty());
        // Remote terms: 4 (one per direction); local terms: 2 (z neighbors).
        let recv = csl_stencil::receive_chunk_block(&ctx, apply).unwrap();
        assert_eq!(
            ctx.walk_filtered(ctx.parent_op(ctx.block_ops(recv)[0]).unwrap(), |n| n
                == csl_stencil::ACCESS)
                .len(),
            4 + 2
        );
    }

    #[test]
    fn coefficients_are_promoted_into_receive_region() {
        let (ctx, module) = lower_to_csl_stencil(Benchmark::Jacobian, 1);
        let apply = ctx.walk_named(module, csl_stencil::APPLY)[0];
        let recv = csl_stencil::receive_chunk_block(&ctx, apply).unwrap();
        let muls: Vec<OpId> = ctx
            .block_ops(recv)
            .iter()
            .copied()
            .filter(|&op| ctx.op_name(op) == arith::MULF)
            .collect();
        assert_eq!(muls.len(), 4, "each remote term is scaled while receiving");
        for m in muls {
            let coeff = ctx.attr(m, "coefficient").and_then(Attribute::as_float).unwrap();
            assert!((coeff - 0.16666).abs() < 1e-4);
        }
    }

    #[test]
    fn acoustic_keeps_local_apply_untouched() {
        let (ctx, module) = lower_to_csl_stencil(Benchmark::Acoustic, 1);
        // Equation 1 (u_prev = u) has no remote data: it stays a stencil.apply.
        assert_eq!(ctx.walk_named(module, stencil::APPLY).len(), 1);
        assert_eq!(ctx.walk_named(module, csl_stencil::APPLY).len(), 1);
        assert!(verify(&ctx, module, &wse_csl::register_all()).is_empty());
    }

    #[test]
    fn uvkbe_fused_apply_is_split_per_output() {
        let (ctx, module) = lower_to_csl_stencil(Benchmark::Uvkbe, 1);
        // The fused two-output apply is split into two csl_stencil applies
        // according to buffer communications (Section 5.7).
        assert_eq!(ctx.walk_named(module, csl_stencil::APPLY).len(), 2);
        assert!(verify(&ctx, module, &wse_csl::register_all()).is_empty());
    }

    #[test]
    fn wrapper_carries_program_parameters() {
        let (ctx, module) = lower_to_csl_stencil(Benchmark::Seismic25, 2);
        let wrapper = csl_wrapper::find_wrapper(&ctx, module).expect("wrapper exists");
        let params = csl_wrapper::WrapperParams::from_op(&ctx, wrapper).unwrap();
        assert_eq!(params.width, 10);
        assert_eq!(params.height, 10);
        assert_eq!(params.z_dim, 16);
        assert_eq!(params.pattern, 4, "25-point stencil has radius 4");
        assert_eq!(params.num_chunks, 2);
        assert_eq!(params.chunk_size, 8);
        // The kernel function now lives inside the wrapper's program region.
        let program_block = csl_wrapper::program_block(&ctx, wrapper).unwrap();
        assert!(ctx
            .block_ops(program_block)
            .iter()
            .any(|&op| ctx.op_name(op) == wse_dialects::func::FUNC));
    }

    #[test]
    fn indivisible_chunking_falls_back_to_one_chunk() {
        // z = 12 with 5 requested chunks cannot be split evenly; the pass
        // falls back to a single chunk rather than producing invalid IR.
        let (ctx, module) = lower_to_csl_stencil(Benchmark::Jacobian, 5);
        let apply = ctx.walk_named(module, csl_stencil::APPLY)[0];
        assert_eq!(csl_stencil::num_chunks(&ctx, apply), 1);
        assert!(verify(&ctx, module, &wse_csl::register_all()).is_empty());
    }
}
