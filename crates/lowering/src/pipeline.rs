//! The complete lowering pipeline from the `stencil` dialect to CSL.
//!
//! [`PipelineOptions`] selects the WSE generation and the optimizations
//! described in Section 5.7; [`build_pass_manager`] assembles the pass
//! sequence of Figure 3; [`lower_program`] runs a front-end program all the
//! way to CSL sources.

use wse_csl::{print_csl, CommsLibraryConfig, CslSources};
use wse_frontends::{emit_stencil_ir_into, StencilProgram};
use wse_ir::{IrContext, OpId, PassError, PassManager};

use crate::decompose::{DecomposeProducts, DistributeStencil, TensorizeZ};
use crate::linalg_to_csl::{ConvertLinalgToCsl, LinalgFuseMultiplyAdd};
use crate::opt_passes::{ConvertArithToVarith, StencilInlining, VarithFuseRepeatedOperands};
use crate::to_actors::{LowerCslStencilToActors, LowerCslWrapperToCsl};
use crate::to_csl_stencil::{ConvertStencilToCslStencil, CslStencilOptions, WrapInCslWrapper};

/// The target Wafer-Scale Engine generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum WseTarget {
    /// Cerebras CS-2 (WSE2): 850 000 PEs, older switching logic that
    /// requires each PE to also transmit to itself.
    Wse2,
    /// Cerebras CS-3 (WSE3): 900 000 PEs, upgraded switching logic.
    #[default]
    Wse3,
}

impl WseTarget {
    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            WseTarget::Wse2 => "WSE2",
            WseTarget::Wse3 => "WSE3",
        }
    }

    /// Whether the generation requires the self-transmit workaround.
    pub fn requires_self_transmit(self) -> bool {
        matches!(self, WseTarget::Wse2)
    }
}

/// Options controlling the lowering pipeline.
///
/// The struct is `Hash`/`Eq` so it can key compile caches (the compile
/// service combines it with the structural IR fingerprint).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PipelineOptions {
    /// Target WSE generation.
    pub target: WseTarget,
    /// PE-grid extent in x (defaults to the program's x extent).
    pub width: Option<i64>,
    /// PE-grid extent in y (defaults to the program's y extent).
    pub height: Option<i64>,
    /// Number of chunks per halo exchange.
    pub num_chunks: i64,
    /// Enable `stencil-inlining`.
    pub enable_inlining: bool,
    /// Enable the varith conversion and repeated-operand fusion.
    pub enable_varith: bool,
    /// Enable `linalg-fuse-multiply-add` (fmacs generation).
    pub enable_fmac_fusion: bool,
    /// Apply remote-term coefficients while receiving chunks.
    pub promote_coefficients: bool,
    /// Verify the IR after every pass (slower; used by tests).
    pub verify_each: bool,
}

impl Default for PipelineOptions {
    fn default() -> Self {
        Self {
            target: WseTarget::Wse3,
            width: None,
            height: None,
            num_chunks: 1,
            enable_inlining: true,
            enable_varith: true,
            enable_fmac_fusion: true,
            promote_coefficients: true,
            verify_each: false,
        }
    }
}

impl PipelineOptions {
    /// Options targeting a specific generation with defaults otherwise.
    pub fn for_target(target: WseTarget) -> Self {
        Self { target, ..Self::default() }
    }
}

/// The result of lowering a program.
#[derive(Debug)]
pub struct LoweredProgram {
    /// The IR context holding the final module.
    pub ctx: IrContext,
    /// The top-level module (contains the layout and program `csl.module`s).
    pub module: OpId,
    /// Generated CSL sources (program, layout, runtime library).
    pub sources: CslSources,
    /// Names of the passes that were run, in order.
    pub pass_names: Vec<String>,
}

/// Assembles the pass pipeline of Figure 3 for `program`.
pub fn build_pass_manager(program: &StencilProgram, options: &PipelineOptions) -> PassManager {
    let width = options.width.unwrap_or(program.grid.x);
    let height = options.height.unwrap_or(program.grid.y);
    let mut pm =
        PassManager::new().verify_each(options.verify_each).with_registry(wse_csl::register_all());
    if options.enable_inlining {
        pm.add_pass(Box::new(StencilInlining));
    }
    if options.enable_varith {
        pm.add_pass(Box::new(ConvertArithToVarith));
        pm.add_pass(Box::new(VarithFuseRepeatedOperands));
    }
    pm.add_pass(Box::new(DecomposeProducts));
    pm.add_pass(Box::new(DistributeStencil { width, height }));
    pm.add_pass(Box::new(TensorizeZ));
    pm.add_pass(Box::new(ConvertStencilToCslStencil {
        options: CslStencilOptions {
            num_chunks: options.num_chunks,
            promote_coefficients: options.promote_coefficients,
        },
    }));
    pm.add_pass(Box::new(WrapInCslWrapper { width, height }));
    pm.add_pass(Box::new(LowerCslStencilToActors));
    if options.enable_fmac_fusion {
        pm.add_pass(Box::new(LinalgFuseMultiplyAdd));
    }
    pm.add_pass(Box::new(ConvertLinalgToCsl));
    pm.add_pass(Box::new(LowerCslWrapperToCsl));
    pm
}

/// An error from the lowering pipeline.
///
/// Distinguishes front-end emission failures (program validation) from
/// pass failures, so callers can map them onto typed diagnostics instead
/// of sniffing stage strings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LowerError {
    /// Front-end emission or program validation failed.
    Emit(String),
    /// A lowering pass failed.
    Pass(PassError),
}

impl std::fmt::Display for LowerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LowerError::Emit(message) => write!(f, "emit-stencil-ir failed: {message}"),
            LowerError::Pass(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for LowerError {}

impl From<PassError> for LowerError {
    fn from(e: PassError) -> Self {
        LowerError::Pass(e)
    }
}

/// Lowers a front-end program all the way to CSL sources.
///
/// # Errors
/// Returns a [`LowerError`] if front-end emission or any pass fails.
pub fn lower_program(
    program: &StencilProgram,
    options: &PipelineOptions,
) -> Result<LoweredProgram, LowerError> {
    let mut ctx = IrContext::new();
    let module = emit_stencil_ir_into(&mut ctx, program).map_err(LowerError::Emit)?.0;
    let (sources, pass_names) = lower_module_in(&mut ctx, module, program, options)?;
    Ok(LoweredProgram { ctx, module, sources, pass_names })
}

/// Lowers an already-emitted stencil module in place inside `ctx`.
///
/// This is the context-reusing entry point: the compile service emits into
/// a pooled [`IrContext`] (via `emit_stencil_ir_into`), fingerprints the
/// module for its artifact cache, and only on a cache miss runs the pass
/// pipeline here.  Returns the generated CSL sources and the names of the
/// passes that ran.
///
/// # Errors
/// Returns a [`LowerError`] if any pass fails.
pub fn lower_module_in(
    ctx: &mut IrContext,
    module: OpId,
    program: &StencilProgram,
    options: &PipelineOptions,
) -> Result<(CslSources, Vec<String>), LowerError> {
    let mut pm = build_pass_manager(program, options);
    let pass_names: Vec<String> = pm.pass_names().iter().map(|s| s.to_string()).collect();
    pm.run(ctx, module)?;
    let mut sources = print_csl(ctx, module);
    // The runtime library is specialized per generation (WSE2 needs the
    // self-transmit workaround).
    if let Some(lib) = sources.files.iter_mut().find(|f| f.name == "stencil_comms.csl") {
        lib.content = wse_csl::stencil_comms_library_with(CommsLibraryConfig {
            pattern: program.xy_radius().max(1),
            num_chunks: options.num_chunks,
            chunk_size: program.grid.z / options.num_chunks.max(1),
            wse2_self_transmit: options.target.requires_self_transmit(),
        });
    }
    Ok((sources, pass_names))
}

#[cfg(test)]
mod tests {
    use super::*;
    use wse_csl::csl;
    use wse_frontends::benchmarks::Benchmark;
    use wse_ir::verify;

    #[test]
    fn full_pipeline_runs_for_every_benchmark() {
        for benchmark in Benchmark::ALL {
            let program = benchmark.tiny_program();
            let options =
                PipelineOptions { verify_each: true, num_chunks: 2, ..PipelineOptions::default() };
            let lowered = lower_program(&program, &options)
                .unwrap_or_else(|e| panic!("{} failed: {e}", benchmark.name()));
            let errors = verify(&lowered.ctx, lowered.module, &wse_csl::register_all());
            assert!(errors.is_empty(), "{}: {errors:?}", benchmark.name());
            // Layout + program modules and generated sources exist.
            assert_eq!(lowered.ctx.walk_named(lowered.module, csl::MODULE).len(), 2);
            assert!(lowered.sources.kernel_loc() > 0, "{} has no kernel", benchmark.name());
            assert!(lowered.sources.total_loc() > lowered.sources.kernel_loc());
            assert!(lowered.pass_names.len() >= 8);
        }
    }

    #[test]
    fn fmac_fusion_produces_fmacs_builtins() {
        let program = Benchmark::Seismic25.tiny_program();
        let fused = lower_program(&program, &PipelineOptions::default()).unwrap();
        let unfused = lower_program(
            &program,
            &PipelineOptions { enable_fmac_fusion: false, ..PipelineOptions::default() },
        )
        .unwrap();
        let count = |lowered: &LoweredProgram, name: &str| {
            lowered.ctx.walk_named(lowered.module, name).len()
        };
        assert!(count(&fused, csl::FMACS) > 0, "fusion produces @fmacs");
        assert_eq!(count(&unfused, csl::FMACS), 0, "without fusion there are no @fmacs");
        assert!(count(&unfused, csl::FMULS) > count(&fused, csl::FMULS));
    }

    #[test]
    fn wse2_runtime_library_differs() {
        let program = Benchmark::Jacobian.tiny_program();
        let wse2 = lower_program(&program, &PipelineOptions::for_target(WseTarget::Wse2)).unwrap();
        let wse3 = lower_program(&program, &PipelineOptions::for_target(WseTarget::Wse3)).unwrap();
        let lib = |l: &LoweredProgram| l.sources.file("stencil_comms.csl").unwrap().content.clone();
        assert!(lib(&wse2).contains("self_transmit"));
        assert!(!lib(&wse3).contains("self_transmit"));
        assert_eq!(WseTarget::Wse2.name(), "WSE2");
        assert!(WseTarget::Wse2.requires_self_transmit());
        assert!(!WseTarget::Wse3.requires_self_transmit());
    }

    fn burgers_program() -> wse_frontends::StencilProgram {
        use wse_frontends::ast::{Expr, Frontend, GridSpec, StencilEquation, StencilProgram};
        // 1-D Burgers-style advection: u -= c·u·(u - u[x-1]) plus a
        // diffusive linear part.
        let expr = Expr::center("u")
            + (Expr::center("u") * (Expr::center("u") - Expr::at("u", -1, 0, 0))).scale(-0.2)
            + (Expr::at("u", 1, 0, 0) - Expr::center("u")).scale(0.05);
        let program = StencilProgram {
            name: "burgers".into(),
            frontend: Frontend::Csl,
            grid: GridSpec::new(4, 4, 6),
            fields: vec!["u".into()],
            equations: vec![StencilEquation::new("u", expr)],
            timesteps: 3,
            source: String::new(),
        };
        program.validate().expect("valid test program");
        program
    }

    #[test]
    fn nonlinear_program_lowers_end_to_end() {
        let options =
            PipelineOptions { verify_each: true, num_chunks: 2, ..PipelineOptions::default() };
        let lowered = lower_program(&burgers_program(), &options).unwrap();
        let errors = verify(&lowered.ctx, lowered.module, &wse_csl::register_all());
        assert!(errors.is_empty(), "verification failed: {errors:?}");
        // The decomposition introduced internal scratch fields for the
        // products, excluded from observable state.
        let program_module = lowered
            .ctx
            .walk_named(lowered.module, csl::MODULE)
            .into_iter()
            .find(|&m| lowered.ctx.attr_int(m, "z_dim").is_some())
            .expect("program module");
        let internal = lowered
            .ctx
            .attr(program_module, crate::opt_passes::INTERNAL_FIELDS_ATTR)
            .and_then(wse_ir::Attribute::as_array)
            .map(|a| a.len())
            .unwrap_or(0);
        assert!(internal >= 1, "product scratch fields must be internal");
        // The data×data multiply survives fmac fusion as a plain @fmuls
        // without a coefficient annotation.
        let product_muls = lowered
            .ctx
            .walk_named(lowered.module, csl::FMULS)
            .into_iter()
            .filter(|&m| lowered.ctx.attr(m, "coefficient").is_none())
            .count();
        assert!(product_muls >= 1, "expected an unannotated data×data @fmuls");
    }

    #[test]
    fn degree_three_program_is_rejected_with_stable_code() {
        use wse_frontends::ast::{Expr, Frontend, GridSpec, StencilEquation, StencilProgram};
        let cube = Expr::center("u") * Expr::center("u") * Expr::center("u");
        let program = StencilProgram {
            name: "cubic".into(),
            frontend: Frontend::Csl,
            grid: GridSpec::new(3, 3, 4),
            fields: vec!["u".into()],
            equations: vec![StencilEquation::new("u", cube + Expr::at("u", 1, 0, 0).scale(0.1))],
            timesteps: 1,
            source: String::new(),
        };
        program.validate().unwrap();
        let err = lower_program(&program, &PipelineOptions::default()).unwrap_err();
        let LowerError::Pass(pass_error) = err else { panic!("expected a pass error") };
        assert_eq!(pass_error.code.as_deref(), Some("non-linear-degree"), "{pass_error}");
        assert_eq!(pass_error.pass, "distribute-stencil");
    }

    #[test]
    fn generated_kernel_loc_is_reasonable() {
        // Table 1: the generated kernel is O(100) lines while the DSL input
        // is a few tens of lines.
        let program = Benchmark::Jacobian.tiny_program();
        let lowered = lower_program(&program, &PipelineOptions::default()).unwrap();
        let kernel = lowered.sources.kernel_loc();
        assert!(kernel > 30, "kernel unexpectedly small: {kernel}");
        assert!(program.source_loc() < kernel, "DSL must be far shorter than generated CSL");
    }
}
