//! Groups 3 and 4: memory realization within a PE and mapping to the actor
//! execution model (Sections 5.3 and 5.4 of the paper).
//!
//! `lower-csl-stencil-to-actors` converts the kernel function into a
//! `csl.module` program: every `csl_stencil.apply` becomes a `seq_kernel`
//! function that starts the chunked halo exchange plus two software actors
//! (a receive-chunk task and a done-exchange task), buffers are realized as
//! PE-local allocations (`csl.zeros` / `csl.constants`), compute becomes
//! destination-passing-style `linalg` operations over `memref` views, and
//! the surrounding `scf.for` time loop is rewritten into the
//! `for_cond0` / `for_inc0` / `for_post0` task graph of Figure 1.
//!
//! `lower-csl-wrapper-to-csl` then emits the layout metaprogram as a second
//! `csl.module` and dissolves the wrapper.

use std::collections::HashMap;

use wse_csl::{csl, csl_stencil, csl_wrapper};
use wse_dialects::{arith, func, linalg, memref, scf, stencil};
use wse_ir::{
    Attribute, BlockId, IrContext, OpBuilder, OpId, Pass, PassError, PassResult, Type, ValueId,
};

use crate::decompose::apply_combinations;

/// Identifier of the local task used for the timestep condition check.
const FOR_COND_TASK_ID: i64 = 3;

/// Lowers the kernel function to the CSL actor model (program module).
#[derive(Debug, Default, Clone, Copy)]
pub struct LowerCslStencilToActors;

impl Pass for LowerCslStencilToActors {
    fn name(&self) -> &str {
        "lower-csl-stencil-to-actors"
    }

    fn run(&self, ctx: &mut IrContext, module: OpId) -> PassResult {
        let wrapper = csl_wrapper::find_wrapper(ctx, module)
            .ok_or_else(|| PassError::new(self.name(), "module has not been wrapped"))?;
        let program_block = csl_wrapper::program_block(ctx, wrapper)
            .ok_or_else(|| PassError::new(self.name(), "wrapper has no program region"))?;
        let kernel_func = ctx
            .block_ops(program_block)
            .iter()
            .copied()
            .find(|&op| ctx.op_name(op) == func::FUNC)
            .ok_or_else(|| PassError::new(self.name(), "program region has no kernel function"))?;
        let params = csl_wrapper::WrapperParams::from_op(ctx, wrapper)
            .ok_or_else(|| PassError::new(self.name(), "wrapper is missing parameters"))?;
        lower_function(ctx, program_block, kernel_func, &params)
            .map_err(|m| PassError::new(self.name(), m))
    }
}

/// Per-kernel information gathered from the function body.
struct KernelInfo {
    /// The apply op (csl_stencil.apply or local-only stencil.apply).
    apply: OpId,
    /// True if it performs a halo exchange.
    communicates: bool,
    /// Field index written by the apply's store.
    output_field: usize,
    /// Field index backing each apply operand (loads, function arguments or
    /// results forwarded from earlier applies).
    operand_fields: Vec<usize>,
}

/// One receive slot shared by every remote term reading the same
/// `(field, dx, dy)` neighbor column (the terms differ only in z-shift).
struct SlotGroup {
    /// Field index transmitted by the slot.
    field: usize,
    /// Neighbor offset in x.
    dx: i64,
    /// Neighbor offset in y.
    dy: i64,
    /// Indices into the kernel's remote-term list.
    terms: Vec<usize>,
}

/// Groups remote terms into shared receive slots, in first-appearance
/// order (which keeps single-term kernels identical to the ungrouped
/// lowering).
fn slot_groups(remote_terms: &[crate::analysis::Term], operand_fields: &[usize]) -> Vec<SlotGroup> {
    let mut groups: Vec<SlotGroup> = Vec::new();
    for (i, term) in remote_terms.iter().enumerate() {
        let field = operand_fields.get(term.input).copied().unwrap_or(0);
        let dx = term.offset.first().copied().unwrap_or(0);
        let dy = term.offset.get(1).copied().unwrap_or(0);
        match groups.iter_mut().find(|g| g.field == field && g.dx == dx && g.dy == dy) {
            Some(group) => group.terms.push(i),
            None => groups.push(SlotGroup { field, dx, dy, terms: vec![i] }),
        }
    }
    groups
}

/// One factor of a bare product term, resolved against the kernel's
/// operand fields.
#[derive(Debug, Clone, Copy)]
struct ProductFactor {
    /// Field index backing the accessed operand.
    field: usize,
    /// Neighbor offset in x.
    dx: i64,
    /// Neighbor offset in y.
    dy: i64,
    /// z-shift of the access.
    dz: i64,
}

impl ProductFactor {
    fn is_remote(&self) -> bool {
        self.dx != 0 || self.dy != 0
    }
}

fn product_factors(term: &crate::analysis::Term, operand_fields: &[usize]) -> Vec<ProductFactor> {
    term.factors()
        .iter()
        .map(|f| ProductFactor {
            field: operand_fields.get(f.input).copied().unwrap_or(0),
            dx: f.offset.first().copied().unwrap_or(0),
            dy: f.offset.get(1).copied().unwrap_or(0),
            dz: f.offset.get(2).copied().unwrap_or(0),
        })
        .collect()
}

/// Receive-slot assignment for a product kernel: one slot per distinct
/// remote `(field, dx, dy)` neighbor column among the factors (a squared
/// remote access shares one slot).
fn product_slot_groups(factors: &[ProductFactor]) -> Vec<(usize, i64, i64)> {
    let mut groups: Vec<(usize, i64, i64)> = Vec::new();
    for f in factors.iter().filter(|f| f.is_remote()) {
        if !groups.contains(&(f.field, f.dx, f.dy)) {
            groups.push((f.field, f.dx, f.dy));
        }
    }
    groups
}

fn lower_function(
    ctx: &mut IrContext,
    program_block: BlockId,
    kernel_func: OpId,
    params: &csl_wrapper::WrapperParams,
) -> Result<(), String> {
    let field_names: Vec<String> = ctx
        .attr(kernel_func, "field_names")
        .and_then(Attribute::as_array)
        .map(|a| a.iter().filter_map(|x| x.as_str().map(str::to_string)).collect())
        .unwrap_or_default();
    let timesteps = ctx.attr_int(kernel_func, "timesteps").unwrap_or(1);
    let entry = func::func_body(ctx, kernel_func).ok_or("kernel function has no body")?;
    let func_args = ctx.block_args(entry).to_vec();

    // The applies live either directly in the entry block or inside an
    // scf.for body.
    let loop_op = ctx.block_ops(entry).iter().copied().find(|&op| ctx.op_name(op) == scf::FOR);
    let work_block = match loop_op {
        Some(for_op) => scf::for_body(ctx, for_op).ok_or("time loop has no body")?,
        None => entry,
    };

    // Map SSA values (loads / apply results) back to field indices so the
    // actor code can address the right PE-local buffer.
    let mut value_field: HashMap<ValueId, usize> = HashMap::new();
    for (i, &arg) in func_args.iter().enumerate() {
        value_field.insert(arg, i);
    }
    for load in ctx.walk_named(kernel_func, stencil::LOAD) {
        let src = ctx.operand(load, 0);
        if let Some(&f) = value_field.get(&src) {
            value_field.insert(ctx.result(load, 0), f);
        }
    }

    // Gather the kernels (applies) in program order together with their
    // output field (from the store that consumes the result) and the field
    // index backing each operand.
    let mut kernels: Vec<KernelInfo> = Vec::new();
    for &op in ctx.block_ops(work_block) {
        let name = ctx.op_name(op).to_string();
        if name != csl_stencil::APPLY && name != stencil::APPLY {
            continue;
        }
        if ctx.results(op).len() != 1 {
            // One kernel executes one combination writing one field; the
            // csl_stencil conversion splits fused applies per output, so a
            // multi-result apply here means a pass ordering bug upstream.
            return Err(format!(
                "apply with {} results reached the actor lowering (expected exactly 1; \
                 multi-output applies must be split by convert-stencil-to-csl-stencil)",
                ctx.results(op).len()
            ));
        }
        let result = ctx.result(op, 0);
        let store = ctx
            .uses_of(result)
            .into_iter()
            .map(|(user, _)| user)
            .find(|&user| ctx.op_name(user) == stencil::STORE)
            .ok_or("apply result is never stored")?;
        let out_value = ctx.operand(store, 1);
        let output_field =
            *value_field.get(&out_value).ok_or("store destination is not a kernel field")?;
        let operand_fields: Vec<usize> = ctx
            .operands(op)
            .iter()
            .map(|operand| value_field.get(operand).copied().unwrap_or(output_field))
            .collect();
        // Later applies may consume this apply's result directly (forwarded
        // centre-only reads).
        value_field.insert(result, output_field);
        kernels.push(KernelInfo {
            apply: op,
            communicates: name == csl_stencil::APPLY,
            output_field,
            operand_fields,
        });
    }
    if kernels.is_empty() {
        return Err("kernel contains no stencil applies".into());
    }

    let z_interior = params.z_dim;
    let z_halo = kernels.iter().filter_map(|k| ctx.attr_int(k.apply, "z_halo")).max().unwrap_or(0);
    let z_storage = z_interior + 2 * z_halo;
    // Receive slots are shared per (field, dx, dy): terms that differ only
    // in their z-shift read the same transmitted neighbor column, so they
    // ride one slot (and, when chunked, one staged column) instead of one
    // each.
    let mut max_slots = 1i64;
    for info in kernels.iter().filter(|k| k.communicates) {
        if let Some(combos) = apply_combinations(ctx, info.apply) {
            let combo = combos.first().cloned().unwrap_or_default();
            if let Some(term) = combo.terms.iter().find(|t| t.factor2.is_some()) {
                let factors = product_factors(term, &info.operand_fields);
                max_slots = max_slots.max(product_slot_groups(&factors).len() as i64);
            } else {
                let remote: Vec<_> = combo.remote_terms().into_iter().cloned().collect();
                max_slots = max_slots.max(slot_groups(&remote, &info.operand_fields).len() as i64);
            }
        }
    }

    // ------------------------------------------------------------------
    // Build the program module skeleton.
    // ------------------------------------------------------------------
    let mut b = OpBuilder::at_start(ctx, program_block);
    let (program_module, program_body) =
        csl::build_module(&mut b, "pe_program", csl::ModuleKind::Program);
    ctx.set_attr(program_module, "width", Attribute::int(params.width));
    ctx.set_attr(program_module, "height", Attribute::int(params.height));
    ctx.set_attr(program_module, "z_dim", Attribute::int(z_interior));
    ctx.set_attr(program_module, "z_halo", Attribute::int(z_halo));
    ctx.set_attr(program_module, "timesteps", Attribute::int(timesteps));
    // Double-buffer fields introduced by `stencil-inlining` stay internal
    // all the way down: the loader reads this attribute off the program
    // module so the simulators can exclude them from observable state.
    if let Some(internal) = ctx.attr(kernel_func, crate::opt_passes::INTERNAL_FIELDS_ATTR).cloned()
    {
        ctx.set_attr(program_module, crate::opt_passes::INTERNAL_FIELDS_ATTR, internal);
    }

    let mut mb = OpBuilder::at_end(ctx, program_body);
    csl::param(&mut mb, "width", Some(params.width), Type::int(16));
    csl::param(&mut mb, "height", Some(params.height), Type::int(16));
    csl::param(&mut mb, "z_dim", Some(z_interior), Type::int(16));
    let _memcpy = csl::import_module(&mut mb, "<memcpy/memcpy>");
    let comms = csl::import_module(&mut mb, "stencil_comms.csl");

    // PE-local buffers: one column buffer per field, one accumulator, one
    // receive staging buffer, one scratch buffer.
    let buffer_ty = Type::memref(vec![z_storage], Type::f32());
    let mut field_buffers: Vec<ValueId> = Vec::new();
    for (i, _) in func_args.iter().enumerate() {
        let name = field_names.get(i).cloned().unwrap_or_else(|| format!("field{i}"));
        let buf = csl::zeros(&mut mb, &name, buffer_ty.clone());
        csl::export(&mut mb, &name, "buffer");
        field_buffers.push(buf);
    }
    let acc_ty = Type::memref(vec![z_interior], Type::f32());
    let acc_buf = csl::zeros(&mut mb, "accumulator", acc_ty.clone());
    let scratch_buf = csl::zeros(&mut mb, "scratch", acc_ty.clone());
    let chunk_size = params.chunk_size;
    let recv_ty = Type::memref(vec![max_slots * chunk_size], Type::f32());
    let recv_buf = csl::zeros(&mut mb, "recv_buffer", recv_ty);

    if timesteps > 1 {
        csl::var(&mut mb, "step", Type::int(16), 0);
    }

    // Coefficient constant buffers are created lazily per distinct value.
    let mut coeff_buffers: HashMap<u32, ValueId> = HashMap::new();

    // ------------------------------------------------------------------
    // Emit one seq_kernel (+ callbacks) per apply.
    // ------------------------------------------------------------------
    let num_kernels = kernels.len();
    for (k, info) in kernels.iter().enumerate() {
        let continuation = if k + 1 < num_kernels {
            format!("seq_kernel{}", k + 1)
        } else if timesteps > 1 {
            "for_inc0".to_string()
        } else {
            "for_post0".to_string()
        };
        let combos =
            apply_combinations(ctx, info.apply).ok_or("apply is missing its cached analysis")?;
        let combo = combos.first().cloned().unwrap_or_default();

        if let Some(term) = combo.terms.iter().find(|t| t.factor2.is_some()).cloned() {
            // `decompose-products` normalizes every degree-2 apply into a
            // bare product (one unit-coefficient term, zero constant)
            // feeding a linear consumer; anything else here is a pass
            // ordering bug upstream.
            if combo.terms.len() != 1 || combo.constant != 0.0 || term.coeff != 1.0 {
                return Err(format!(
                    "non-bare product combination reached the actor lowering \
                     ({} terms, constant {}, coeff {}); degree-2 applies must be \
                     normalized by decompose-products",
                    combo.terms.len(),
                    combo.constant,
                    term.coeff
                ));
            }
            emit_product_kernel(
                ctx,
                program_body,
                info,
                &term,
                &continuation,
                k,
                ProductLayout { z_interior, z_halo, chunk_size },
                &field_buffers,
                acc_buf,
                recv_buf,
                comms,
            )?;
            continue;
        }

        if info.communicates {
            let exchanges = csl_stencil::swaps_of(ctx, info.apply);
            let num_chunks = csl_stencil::num_chunks(ctx, info.apply);
            let chunk = ctx.attr_int(info.apply, "chunk_size").unwrap_or(z_interior);
            let remote_terms: Vec<_> = combo.remote_terms().into_iter().cloned().collect();
            let local_terms: Vec<_> = combo.local_terms().into_iter().cloned().collect();
            // One receive slot per distinct (field, dx, dy): z-shifted
            // variants of the same neighbor column share the slot.
            let groups = slot_groups(&remote_terms, &info.operand_fields);
            let slot_fields: Vec<i64> = groups.iter().map(|g| g.field as i64).collect();
            // Map each communicated field to its buffer operand order in the
            // communicate call.
            let mut comm_fields: Vec<i64> = slot_fields.clone();
            comm_fields.sort_unstable();
            comm_fields.dedup();

            // Remote terms with a z-shift cannot be reduced chunk-by-chunk
            // (the shifted read crosses chunk boundaries).  With multiple
            // chunks, each such *group* stages the neighbor's full column
            // into one shared buffer and its terms reduce in the
            // done-exchange callback.  With a single chunk the receive
            // buffer already holds the whole column, so staging is skipped
            // and the done callback reads the slot window directly.
            let single_chunk = num_chunks == 1 && chunk == z_interior;
            let mut staged_cols: HashMap<usize, ValueId> = HashMap::new();
            if !single_chunk {
                let mut mb = OpBuilder::at_end(ctx, program_body);
                for (g, group) in groups.iter().enumerate() {
                    if group.terms.iter().any(|&t| remote_terms[t].dz() != 0) {
                        let col = csl::zeros(
                            &mut mb,
                            &format!("remote_col{k}_{g}"),
                            Type::memref(vec![z_interior], Type::f32()),
                        );
                        staged_cols.insert(g, col);
                    }
                }
            }

            // ---- seq_kernel{k}: reset accumulator, start the exchange.
            let mut mb = OpBuilder::at_end(ctx, program_body);
            let (_f, body) = csl::build_func(&mut mb, &format!("seq_kernel{k}"), vec![]);
            let mut fb = OpBuilder::at_end(ctx, body);
            // The accumulator starts at the combination's additive
            // constant (zero for every paper benchmark, but not for
            // generated workloads).
            let init = arith::constant_f32(&mut fb, combo.constant, Type::f32());
            linalg::fill(&mut fb, init, acc_buf);
            let comm_operands: Vec<ValueId> =
                comm_fields.iter().map(|&f| field_buffers[f as usize]).collect();
            let call = csl::member_call(
                &mut fb,
                "communicate",
                comms,
                comm_operands,
                &[&format!("receive_chunk_cb{k}"), &format!("done_exchange_cb{k}")],
                vec![],
            );
            ctx.set_attr(call, "num_chunks", Attribute::int(num_chunks));
            ctx.set_attr(call, "chunk_size", Attribute::int(chunk));
            ctx.set_attr(call, "fields", Attribute::IndexArray(comm_fields.clone()));
            ctx.set_attr(call, "swaps", csl_stencil::swaps_attr(&exchanges));
            ctx.set_attr(
                call,
                "slot_neighbors",
                Attribute::Array(
                    groups.iter().map(|g| Attribute::IndexArray(vec![g.dx, g.dy])).collect(),
                ),
            );
            ctx.set_attr(call, "slot_fields", Attribute::IndexArray(slot_fields.clone()));
            csl::build_return(ctx, body, vec![]);

            // ---- receive_chunk_cb{k}: reduce one incoming chunk.
            let mut mb = OpBuilder::at_end(ctx, program_body);
            let (_t, recv_body) = csl::build_task(
                &mut mb,
                &format!("receive_chunk_cb{k}"),
                csl::TaskKind::Local,
                (4 + k as i64).min(23),
                vec![Type::int(16)],
            );
            let offset_arg = ctx.block_args(recv_body)[0];
            {
                let mut tb = OpBuilder::at_end(ctx, recv_body);
                let acc_view = memref::subview_dynamic(&mut tb, acc_buf, offset_arg, chunk);
                for (g, group) in groups.iter().enumerate() {
                    let recv_view =
                        memref::subview(&mut tb, recv_buf, g as i64 * chunk_size, chunk);
                    // In-plane terms reduce chunk-by-chunk as the data
                    // arrives.
                    for &t in &group.terms {
                        let term = &remote_terms[t];
                        if term.dz() != 0 {
                            continue;
                        }
                        emit_scaled_accumulate(
                            &mut tb,
                            &mut coeff_buffers,
                            program_body,
                            recv_view,
                            term.coeff,
                            acc_view,
                            scratch_buf,
                            chunk,
                        );
                    }
                    if let Some(&col) = staged_cols.get(&g) {
                        // The group has z-shifted terms: stage this chunk
                        // of the neighbor column once; the shifted
                        // reductions happen in the done-exchange callback.
                        let col_view = memref::subview_dynamic(&mut tb, col, offset_arg, chunk);
                        linalg::copy(&mut tb, recv_view, col_view);
                    }
                }
            }
            csl::build_return(ctx, recv_body, vec![]);

            // ---- done_exchange_cb{k}: local reduction, write-back, chain.
            let mut mb = OpBuilder::at_end(ctx, program_body);
            let (_t, done_body) = csl::build_task(
                &mut mb,
                &format!("done_exchange_cb{k}"),
                csl::TaskKind::Local,
                (10 + k as i64).min(23),
                vec![],
            );
            {
                let mut tb = OpBuilder::at_end(ctx, done_body);
                // z-shifted remote terms: acc[z] += coeff * col[z + dz]
                // over the overlap; outside it the neighbor column reads
                // zero (matching the reference executor's zero halo), so
                // those elements contribute nothing.  The column is the
                // group's shared staged buffer — or, with a single chunk,
                // the slot's window of the receive buffer itself, which
                // still holds the full column when the done callback runs.
                for (g, group) in groups.iter().enumerate() {
                    for &t in &group.terms {
                        let term = &remote_terms[t];
                        let dz = term.dz();
                        if dz == 0 {
                            continue;
                        }
                        let lo = (-dz).max(0);
                        let hi = z_interior.min(z_interior - dz);
                        if hi <= lo {
                            continue;
                        }
                        let len = hi - lo;
                        let src_view = match staged_cols.get(&g) {
                            Some(&col) => memref::subview(&mut tb, col, lo + dz, len),
                            None => memref::subview(
                                &mut tb,
                                recv_buf,
                                g as i64 * chunk_size + lo + dz,
                                len,
                            ),
                        };
                        let dest_view = memref::subview(&mut tb, acc_buf, lo, len);
                        emit_scaled_accumulate(
                            &mut tb,
                            &mut coeff_buffers,
                            program_body,
                            src_view,
                            term.coeff,
                            dest_view,
                            scratch_buf,
                            len,
                        );
                    }
                }
                for term in &local_terms {
                    let src_buf = field_buffers[info.operand_fields[term.input]];
                    let src_view =
                        memref::subview(&mut tb, src_buf, z_halo + term.dz(), z_interior);
                    emit_scaled_accumulate(
                        &mut tb,
                        &mut coeff_buffers,
                        program_body,
                        src_view,
                        term.coeff,
                        acc_buf,
                        scratch_buf,
                        z_interior,
                    );
                }
                // Write the new column back into the output field buffer.
                let out_view =
                    memref::subview(&mut tb, field_buffers[info.output_field], z_halo, z_interior);
                linalg::copy(&mut tb, acc_buf, out_view);
                csl::call(&mut tb, &continuation, vec![]);
            }
            csl::build_return(ctx, done_body, vec![]);
        } else {
            // Local-only apply: one seq_kernel doing the whole update.
            let local_terms: Vec<_> = combo.terms.clone();
            let mut mb = OpBuilder::at_end(ctx, program_body);
            let (_f, body) = csl::build_func(&mut mb, &format!("seq_kernel{k}"), vec![]);
            {
                let mut fb = OpBuilder::at_end(ctx, body);
                let init = arith::constant_f32(&mut fb, combo.constant, Type::f32());
                linalg::fill(&mut fb, init, acc_buf);
                for term in &local_terms {
                    let src_buf = field_buffers[info.operand_fields[term.input]];
                    let src_view =
                        memref::subview(&mut fb, src_buf, z_halo + term.dz(), z_interior);
                    emit_scaled_accumulate(
                        &mut fb,
                        &mut coeff_buffers,
                        program_body,
                        src_view,
                        term.coeff,
                        acc_buf,
                        scratch_buf,
                        z_interior,
                    );
                }
                let out_view =
                    memref::subview(&mut fb, field_buffers[info.output_field], z_halo, z_interior);
                linalg::copy(&mut fb, acc_buf, out_view);
                csl::call(&mut fb, &continuation, vec![]);
            }
            csl::build_return(ctx, body, vec![]);
        }
    }

    // ------------------------------------------------------------------
    // Time-loop task graph (Figure 1) and the host entry point.
    // ------------------------------------------------------------------
    if timesteps > 1 {
        // for_cond0: if (step < timesteps) seq_kernel0() else for_post0().
        let mut mb = OpBuilder::at_end(ctx, program_body);
        let (_t, cond_body) =
            csl::build_task(&mut mb, "for_cond0", csl::TaskKind::Local, FOR_COND_TASK_ID, vec![]);
        {
            let mut tb = OpBuilder::at_end(ctx, cond_body);
            let step = csl::load_var(&mut tb, "step", Type::int(16));
            let limit = arith::constant_int(&mut tb, timesteps, Type::int(16));
            let cond = tb.insert_value(
                wse_ir::OpSpec::new(arith::CMPI)
                    .operands([step, limit])
                    .results([Type::bool()])
                    .attr("predicate", Attribute::str("slt")),
            );
            let (_if_op, then_block, else_block) = csl::build_if(&mut tb, cond);
            let mut then_b = OpBuilder::at_end(ctx, then_block);
            csl::call(&mut then_b, "seq_kernel0", vec![]);
            let mut else_b = OpBuilder::at_end(ctx, else_block);
            csl::call(&mut else_b, "for_post0", vec![]);
        }
        csl::build_return(ctx, cond_body, vec![]);

        // for_inc0: step += 1; @activate(for_cond0).
        let mut mb = OpBuilder::at_end(ctx, program_body);
        let (_f, inc_body) = csl::build_func(&mut mb, "for_inc0", vec![]);
        {
            let mut fb = OpBuilder::at_end(ctx, inc_body);
            let step = csl::load_var(&mut fb, "step", Type::int(16));
            let one = arith::constant_int(&mut fb, 1, Type::int(16));
            let next = arith::addi(&mut fb, step, one);
            csl::store_var(&mut fb, "step", next);
            csl::activate(&mut fb, "for_cond0", FOR_COND_TASK_ID);
        }
        csl::build_return(ctx, inc_body, vec![]);
    }

    // for_post0: return control to the host.
    let mut mb = OpBuilder::at_end(ctx, program_body);
    let (_f, post_body) = csl::build_func(&mut mb, "for_post0", vec![]);
    {
        let mut fb = OpBuilder::at_end(ctx, post_body);
        fb.insert(wse_ir::OpSpec::new(csl::RPC));
    }
    csl::build_return(ctx, post_body, vec![]);

    // f_main: host-callable entry.
    let mut mb = OpBuilder::at_end(ctx, program_body);
    let (_f, main_body) = csl::build_func(&mut mb, "f_main", vec![]);
    {
        let mut fb = OpBuilder::at_end(ctx, main_body);
        if timesteps > 1 {
            csl::activate(&mut fb, "for_cond0", FOR_COND_TASK_ID);
        } else {
            csl::call(&mut fb, "seq_kernel0", vec![]);
        }
    }
    csl::build_return(ctx, main_body, vec![]);
    let mut mb = OpBuilder::at_end(ctx, program_body);
    csl::export(&mut mb, "f_main", "fn");

    // The original kernel function has been fully absorbed.
    ctx.erase_op(kernel_func);
    Ok(())
}

/// Column geometry shared by the product-kernel emitter.
#[derive(Debug, Clone, Copy)]
struct ProductLayout {
    /// Interior z extent of a PE column.
    z_interior: i64,
    /// Halo cells on each side of a field buffer.
    z_halo: i64,
    /// Receive-slot stride in the staging buffer.
    chunk_size: i64,
}

/// Emits the actor kernel for a bare product apply (`out = A · B`
/// elementwise, produced by `decompose-products`).
///
/// Unlike linear kernels, a product cannot reduce chunk-by-chunk against
/// the accumulator: both whole factor columns must be present before the
/// elementwise multiply.  So with chunking every receive slot stages its
/// neighbor column (even without a z-shift) and the multiply runs once in
/// the done-exchange callback, over the window where every remote factor
/// is in range — outside it the neighbor column reads zero (the reference
/// executor's zero halo), so the product is zero there and the zero-filled
/// accumulator already holds the right value.
#[allow(clippy::too_many_arguments)]
fn emit_product_kernel(
    ctx: &mut IrContext,
    program_body: BlockId,
    info: &KernelInfo,
    term: &crate::analysis::Term,
    continuation: &str,
    k: usize,
    layout: ProductLayout,
    field_buffers: &[ValueId],
    acc_buf: ValueId,
    recv_buf: ValueId,
    comms: ValueId,
) -> Result<(), String> {
    let ProductLayout { z_interior, z_halo, chunk_size } = layout;
    let factors = product_factors(term, &info.operand_fields);
    let groups = product_slot_groups(&factors);
    // Slot index feeding each factor (None for PE-local factors).
    let factor_slot: Vec<Option<usize>> =
        factors.iter().map(|f| groups.iter().position(|&g| g == (f.field, f.dx, f.dy))).collect();

    if !info.communicates {
        // Both factors are PE-local: one seq_kernel does the whole update.
        let mut mb = OpBuilder::at_end(ctx, program_body);
        let (_f, body) = csl::build_func(&mut mb, &format!("seq_kernel{k}"), vec![]);
        {
            let mut fb = OpBuilder::at_end(ctx, body);
            let zero = arith::constant_f32(&mut fb, 0.0, Type::f32());
            linalg::fill(&mut fb, zero, acc_buf);
            let mut views = Vec::with_capacity(2);
            for f in &factors {
                views.push(memref::subview(
                    &mut fb,
                    field_buffers[f.field],
                    z_halo + f.dz,
                    z_interior,
                ));
            }
            linalg::mul(&mut fb, views[0], views[1], acc_buf);
            let out_view =
                memref::subview(&mut fb, field_buffers[info.output_field], z_halo, z_interior);
            linalg::copy(&mut fb, acc_buf, out_view);
            csl::call(&mut fb, continuation, vec![]);
        }
        csl::build_return(ctx, body, vec![]);
        return Ok(());
    }

    let exchanges = csl_stencil::swaps_of(ctx, info.apply);
    let num_chunks = csl_stencil::num_chunks(ctx, info.apply);
    let chunk = ctx.attr_int(info.apply, "chunk_size").unwrap_or(z_interior);
    let slot_fields: Vec<i64> = groups.iter().map(|&(f, _, _)| f as i64).collect();
    let mut comm_fields: Vec<i64> = slot_fields.clone();
    comm_fields.sort_unstable();
    comm_fields.dedup();
    let single_chunk = num_chunks == 1 && chunk == z_interior;

    // With chunking every slot stages its full neighbor column; with a
    // single chunk the receive buffer already holds it.
    let mut staged_cols: HashMap<usize, ValueId> = HashMap::new();
    if !single_chunk {
        let mut mb = OpBuilder::at_end(ctx, program_body);
        for g in 0..groups.len() {
            let col = csl::zeros(
                &mut mb,
                &format!("remote_col{k}_{g}"),
                Type::memref(vec![z_interior], Type::f32()),
            );
            staged_cols.insert(g, col);
        }
    }

    // ---- seq_kernel{k}: reset accumulator, start the exchange.
    let mut mb = OpBuilder::at_end(ctx, program_body);
    let (_f, body) = csl::build_func(&mut mb, &format!("seq_kernel{k}"), vec![]);
    {
        let mut fb = OpBuilder::at_end(ctx, body);
        let zero = arith::constant_f32(&mut fb, 0.0, Type::f32());
        linalg::fill(&mut fb, zero, acc_buf);
        let comm_operands: Vec<ValueId> =
            comm_fields.iter().map(|&f| field_buffers[f as usize]).collect();
        let call = csl::member_call(
            &mut fb,
            "communicate",
            comms,
            comm_operands,
            &[&format!("receive_chunk_cb{k}"), &format!("done_exchange_cb{k}")],
            vec![],
        );
        ctx.set_attr(call, "num_chunks", Attribute::int(num_chunks));
        ctx.set_attr(call, "chunk_size", Attribute::int(chunk));
        ctx.set_attr(call, "fields", Attribute::IndexArray(comm_fields));
        ctx.set_attr(call, "swaps", csl_stencil::swaps_attr(&exchanges));
        ctx.set_attr(
            call,
            "slot_neighbors",
            Attribute::Array(
                groups.iter().map(|&(_, dx, dy)| Attribute::IndexArray(vec![dx, dy])).collect(),
            ),
        );
        ctx.set_attr(call, "slot_fields", Attribute::IndexArray(slot_fields));
    }
    csl::build_return(ctx, body, vec![]);

    // ---- receive_chunk_cb{k}: stage each slot's chunk.
    let mut mb = OpBuilder::at_end(ctx, program_body);
    let (_t, recv_body) = csl::build_task(
        &mut mb,
        &format!("receive_chunk_cb{k}"),
        csl::TaskKind::Local,
        (4 + k as i64).min(23),
        vec![Type::int(16)],
    );
    if !single_chunk {
        let offset_arg = ctx.block_args(recv_body)[0];
        let mut tb = OpBuilder::at_end(ctx, recv_body);
        for g in 0..groups.len() {
            if let Some(&col) = staged_cols.get(&g) {
                let recv_view = memref::subview(&mut tb, recv_buf, g as i64 * chunk_size, chunk);
                let col_view = memref::subview_dynamic(&mut tb, col, offset_arg, chunk);
                linalg::copy(&mut tb, recv_view, col_view);
            }
        }
    }
    csl::build_return(ctx, recv_body, vec![]);

    // ---- done_exchange_cb{k}: elementwise multiply, write-back, chain.
    let mut mb = OpBuilder::at_end(ctx, program_body);
    let (_t, done_body) = csl::build_task(
        &mut mb,
        &format!("done_exchange_cb{k}"),
        csl::TaskKind::Local,
        (10 + k as i64).min(23),
        vec![],
    );
    {
        let mut tb = OpBuilder::at_end(ctx, done_body);
        // The window where every remote factor's column read is in range.
        let mut lo = 0i64;
        let mut hi = z_interior;
        for f in factors.iter().filter(|f| f.is_remote()) {
            lo = lo.max(-f.dz);
            hi = hi.min(z_interior - f.dz);
        }
        if hi > lo {
            let len = hi - lo;
            let mut views = Vec::with_capacity(2);
            for (f, slot) in factors.iter().zip(&factor_slot) {
                let view = match slot {
                    Some(g) => match staged_cols.get(g) {
                        Some(&col) => memref::subview(&mut tb, col, lo + f.dz, len),
                        None => memref::subview(
                            &mut tb,
                            recv_buf,
                            *g as i64 * chunk_size + lo + f.dz,
                            len,
                        ),
                    },
                    None => {
                        memref::subview(&mut tb, field_buffers[f.field], z_halo + f.dz + lo, len)
                    }
                };
                views.push(view);
            }
            let dest = if len == z_interior {
                acc_buf
            } else {
                memref::subview(&mut tb, acc_buf, lo, len)
            };
            linalg::mul(&mut tb, views[0], views[1], dest);
        }
        let out_view =
            memref::subview(&mut tb, field_buffers[info.output_field], z_halo, z_interior);
        linalg::copy(&mut tb, acc_buf, out_view);
        csl::call(&mut tb, continuation, vec![]);
    }
    csl::build_return(ctx, done_body, vec![]);
    Ok(())
}

/// Emits `dest += coeff * src` as DPS linalg operations using a scratch
/// buffer; the `linalg-fuse-multiply-add` pass fuses the pair into a
/// `linalg.fmac` when enabled.
#[allow(clippy::too_many_arguments)]
fn emit_scaled_accumulate(
    b: &mut OpBuilder<'_>,
    coeff_buffers: &mut HashMap<u32, ValueId>,
    program_body: BlockId,
    src: ValueId,
    coeff: f32,
    dest: ValueId,
    scratch: ValueId,
    len: i64,
) {
    let index = coeff_buffers.len();
    let coeff_buf = *coeff_buffers.entry(coeff.to_bits()).or_insert_with(|| {
        let buffer_len = b.ctx_ref().value_type(scratch).shape().map(|s| s[0]).unwrap_or(len);
        let mut cb = OpBuilder::at_start(b.ctx(), program_body);
        // Inserted at the start of the module body so the constant dominates
        // every task that references it.
        csl::constants(
            &mut cb,
            &format!("coeff{index}"),
            Type::memref(vec![buffer_len], Type::f32()),
            coeff,
        )
    });
    let coeff_view = memref::subview(b, coeff_buf, 0, len);
    let scratch_view = memref::subview(b, scratch, 0, len);
    let mul = linalg::mul(b, src, coeff_view, scratch_view);
    b.ctx().set_attr(mul, "coefficient", Attribute::f32(coeff));
    let dest_len = b.ctx_ref().value_type(dest).shape().map(|s| s[0]).unwrap_or(len);
    let dest_view = if dest_len == len { dest } else { memref::subview(b, dest, 0, len) };
    linalg::add(b, dest_view, scratch_view, dest_view);
}

// --------------------------------------------------------------------------
// lower-csl-wrapper-to-csl
// --------------------------------------------------------------------------

/// Emits the layout metaprogram as a `csl.module` and dissolves the
/// wrapper, leaving a `builtin.module` that contains exactly the layout and
/// program CSL modules (Section 5.5, last step).
#[derive(Debug, Default, Clone, Copy)]
pub struct LowerCslWrapperToCsl;

impl Pass for LowerCslWrapperToCsl {
    fn name(&self) -> &str {
        "lower-csl-wrapper-to-csl"
    }

    fn run(&self, ctx: &mut IrContext, module: OpId) -> PassResult {
        let Some(wrapper) = csl_wrapper::find_wrapper(ctx, module) else {
            return Ok(());
        };
        let params = csl_wrapper::WrapperParams::from_op(ctx, wrapper)
            .ok_or_else(|| PassError::new(self.name(), "wrapper is missing parameters"))?;
        let module_body = wse_dialects::builtin::module_body(ctx, module);

        // Layout module.
        let mut b = OpBuilder::at_end(ctx, module_body);
        let (_layout_module, layout_body) =
            csl::build_module(&mut b, "layout", csl::ModuleKind::Layout);
        let mut lb = OpBuilder::at_end(ctx, layout_body);
        csl::param(&mut lb, "width", Some(params.width), Type::int(16));
        csl::param(&mut lb, "height", Some(params.height), Type::int(16));
        csl::import_module(&mut lb, "<memcpy/get_params>");
        csl::set_rectangle(&mut lb, params.width, params.height);
        csl::set_tile_code(
            &mut lb,
            "pe_program.csl",
            vec![
                ("z_dim".to_string(), Attribute::int(params.z_dim)),
                ("pattern".to_string(), Attribute::int(params.pattern)),
                ("num_chunks".to_string(), Attribute::int(params.num_chunks)),
                ("chunk_size".to_string(), Attribute::int(params.chunk_size)),
                ("fields".to_string(), Attribute::int(params.fields)),
            ],
        );
        let mut lb = OpBuilder::at_end(ctx, layout_body);
        csl::export(&mut lb, "f_main", "fn");

        // Move the program csl.module out of the wrapper, then erase the
        // wrapper.
        if let Some(program_block) = csl_wrapper::program_block(ctx, wrapper) {
            let program_modules: Vec<OpId> = ctx
                .block_ops(program_block)
                .iter()
                .copied()
                .filter(|&op| ctx.op_name(op) == csl::MODULE)
                .collect();
            for pm in program_modules {
                ctx.detach_op(pm);
                let at = ctx.block_ops(module_body).len();
                ctx.insert_op(module_body, at, pm);
            }
        }
        ctx.erase_op(wrapper);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decompose::{DecomposeProducts, DistributeStencil, TensorizeZ};
    use crate::opt_passes::StencilInlining;
    use crate::to_csl_stencil::{ConvertStencilToCslStencil, CslStencilOptions, WrapInCslWrapper};
    use wse_frontends::{benchmarks::Benchmark, emit_stencil_ir};
    use wse_ir::verify;

    fn lower_to_actors(benchmark: Benchmark, num_chunks: i64) -> (IrContext, OpId) {
        lower_program_to_actors(&benchmark.tiny_program(), num_chunks)
    }

    fn lower_program_to_actors(
        program: &wse_frontends::ast::StencilProgram,
        num_chunks: i64,
    ) -> (IrContext, OpId) {
        let ir = emit_stencil_ir(program).unwrap();
        let mut ctx = ir.ctx;
        StencilInlining.run(&mut ctx, ir.module).unwrap();
        DecomposeProducts.run(&mut ctx, ir.module).unwrap();
        DistributeStencil { width: program.grid.x, height: program.grid.y }
            .run(&mut ctx, ir.module)
            .unwrap();
        TensorizeZ.run(&mut ctx, ir.module).unwrap();
        ConvertStencilToCslStencil {
            options: CslStencilOptions { num_chunks, promote_coefficients: true },
        }
        .run(&mut ctx, ir.module)
        .unwrap();
        WrapInCslWrapper { width: program.grid.x, height: program.grid.y }
            .run(&mut ctx, ir.module)
            .unwrap();
        LowerCslStencilToActors.run(&mut ctx, ir.module).unwrap();
        LowerCslWrapperToCsl.run(&mut ctx, ir.module).unwrap();
        (ctx, ir.module)
    }

    #[test]
    fn jacobian_produces_figure1_task_graph() {
        let (ctx, module) = lower_to_actors(Benchmark::Jacobian, 2);
        let errors = verify(&ctx, module, &wse_csl::register_all());
        assert!(errors.is_empty(), "verification failed: {errors:?}");
        // Two CSL modules: layout + program.
        let modules = ctx.walk_named(module, csl::MODULE);
        assert_eq!(modules.len(), 2);
        // The actor graph of Figure 1: f_main, for_cond0, for_inc0,
        // for_post0, seq_kernel0 and the two callbacks.
        for name in [
            "f_main",
            "for_cond0",
            "for_inc0",
            "for_post0",
            "seq_kernel0",
            "receive_chunk_cb0",
            "done_exchange_cb0",
        ] {
            assert!(csl::find_callable(&ctx, module, name).is_some(), "missing {name}");
        }
        // The original func and stencil ops are gone.
        assert!(ctx.walk_named(module, func::FUNC).is_empty());
        assert!(ctx.walk_named(module, csl_stencil::APPLY).is_empty());
        assert!(ctx.walk_named(module, stencil::APPLY).is_empty());
    }

    #[test]
    fn acoustic_chains_local_then_remote_kernels() {
        let (ctx, module) = lower_to_actors(Benchmark::Acoustic, 1);
        assert!(verify(&ctx, module, &wse_csl::register_all()).is_empty());
        // Two applies → seq_kernel0 (local-only) and seq_kernel1 (comm).
        let k0 = csl::find_callable(&ctx, module, "seq_kernel0").unwrap();
        let k1 = csl::find_callable(&ctx, module, "seq_kernel1").unwrap();
        assert_eq!(ctx.op_name(k0), csl::FUNC);
        assert_eq!(ctx.op_name(k1), csl::FUNC);
        // seq_kernel0 is local: it directly calls seq_kernel1.
        let calls: Vec<&str> = ctx
            .walk_named(k0, csl::CALL)
            .into_iter()
            .filter_map(|c| csl::callee(&ctx, c))
            .collect();
        assert!(calls.contains(&"seq_kernel1"));
        // seq_kernel1 communicates.
        assert_eq!(ctx.walk_named(k1, csl::MEMBER_CALL).len(), 1);
        // Its done callback hands control to the loop increment.
        let done = csl::find_callable(&ctx, module, "done_exchange_cb1").unwrap();
        let done_calls: Vec<&str> = ctx
            .walk_named(done, csl::CALL)
            .into_iter()
            .filter_map(|c| csl::callee(&ctx, c))
            .collect();
        assert!(done_calls.contains(&"for_inc0"));
    }

    #[test]
    fn single_timestep_program_has_no_loop_tasks() {
        let (ctx, module) = lower_to_actors(Benchmark::Uvkbe, 1);
        assert!(verify(&ctx, module, &wse_csl::register_all()).is_empty());
        assert!(csl::find_callable(&ctx, module, "for_cond0").is_none());
        assert!(csl::find_callable(&ctx, module, "for_inc0").is_none());
        assert!(csl::find_callable(&ctx, module, "for_post0").is_some());
        // Two kernels chained: seq_kernel0 -> seq_kernel1 -> for_post0.
        let done0 = csl::find_callable(&ctx, module, "done_exchange_cb0").unwrap();
        let calls: Vec<&str> = ctx
            .walk_named(done0, csl::CALL)
            .into_iter()
            .filter_map(|c| csl::callee(&ctx, c))
            .collect();
        assert!(calls.contains(&"seq_kernel1"));
    }

    fn z_shifted_program(grid_z: i64) -> wse_frontends::ast::StencilProgram {
        use wse_frontends::ast::{Expr, Frontend, GridSpec, StencilEquation, StencilProgram};
        // Three remote terms on the same (field, dx, dy) = (a, +1, 0)
        // neighbor column, differing only in z-shift, plus a center term.
        let expr = Expr::at("a", 1, 0, 1).scale(0.2)
            + Expr::at("a", 1, 0, -1).scale(0.2)
            + Expr::at("a", 1, 0, 0).scale(0.2)
            + Expr::center("a").scale(0.2);
        let program = StencilProgram {
            name: "zshift".into(),
            frontend: Frontend::Csl,
            grid: GridSpec::new(3, 3, grid_z),
            fields: vec!["a".into()],
            equations: vec![StencilEquation::new("a", expr)],
            timesteps: 2,
            source: String::new(),
        };
        program.validate().expect("valid test program");
        program
    }

    #[test]
    fn z_shifted_terms_share_one_staged_column_per_neighbor() {
        // Chunked: the three same-(field, dx, dy) terms must share one
        // receive slot and one staged column, not one each.
        let (ctx, module) = lower_program_to_actors(&z_shifted_program(6), 2);
        assert!(verify(&ctx, module, &wse_csl::register_all()).is_empty());
        let staged: Vec<&str> = ctx
            .walk_named(module, csl::ZEROS)
            .into_iter()
            .filter_map(|z| csl::symbol_name(&ctx, z))
            .filter(|n| n.starts_with("remote_col"))
            .collect();
        assert_eq!(staged, vec!["remote_col0_0"], "one shared column for the neighbor");
        // The receive buffer holds a single slot's chunk.
        let recv = ctx
            .walk_named(module, csl::ZEROS)
            .into_iter()
            .find(|&z| csl::symbol_name(&ctx, z) == Some("recv_buffer"))
            .expect("recv buffer exists");
        let len = ctx.value_type(ctx.result(recv, 0)).shape().map(|s| s[0]).unwrap();
        assert_eq!(len, 3, "one slot of one chunk (z = 6 over 2 chunks)");
    }

    #[test]
    fn single_chunk_z_shifts_skip_staging_entirely() {
        // With one chunk the receive buffer already holds the full
        // column, so no staged copies are emitted at all.
        let (ctx, module) = lower_program_to_actors(&z_shifted_program(6), 1);
        assert!(verify(&ctx, module, &wse_csl::register_all()).is_empty());
        let staged = ctx
            .walk_named(module, csl::ZEROS)
            .into_iter()
            .filter_map(|z| csl::symbol_name(&ctx, z))
            .filter(|n| n.starts_with("remote_col"))
            .count();
        assert_eq!(staged, 0, "single-chunk exchanges read the receive buffer directly");
    }

    fn product_program(dz: i64) -> wse_frontends::ast::StencilProgram {
        use wse_frontends::ast::{Expr, Frontend, GridSpec, StencilEquation, StencilProgram};
        // u · u[+1, 0, dz]: one local factor, one remote factor.
        let expr =
            (Expr::center("u") * Expr::at("u", 1, 0, dz)).scale(0.3) + Expr::center("u").scale(0.7);
        let program = StencilProgram {
            name: "prod".into(),
            frontend: Frontend::Csl,
            grid: GridSpec::new(3, 3, 6),
            fields: vec!["u".into()],
            equations: vec![StencilEquation::new("u", expr)],
            timesteps: 2,
            source: String::new(),
        };
        program.validate().expect("valid test program");
        program
    }

    #[test]
    fn product_kernel_multiplies_without_coefficient_annotation() {
        let (ctx, module) = lower_program_to_actors(&product_program(1), 2);
        assert!(verify(&ctx, module, &wse_csl::register_all()).is_empty());
        // The decomposition produced two kernels: the product, then the
        // linear consumer.
        assert!(csl::find_callable(&ctx, module, "seq_kernel0").is_some());
        assert!(csl::find_callable(&ctx, module, "seq_kernel1").is_some());
        // Exactly one data×data multiply, with no coefficient attribute
        // (so fmac fusion leaves it alone).
        let product_muls: Vec<OpId> = ctx
            .walk_named(module, linalg::MUL)
            .into_iter()
            .filter(|&m| ctx.attr(m, "coefficient").is_none())
            .collect();
        assert_eq!(product_muls.len(), 1, "one elementwise product multiply");
        // Chunked exchange: the remote factor's column is staged in full
        // before the multiply runs.
        let staged: Vec<&str> = ctx
            .walk_named(module, csl::ZEROS)
            .into_iter()
            .filter_map(|z| csl::symbol_name(&ctx, z))
            .filter(|n| n.starts_with("remote_col"))
            .collect();
        assert_eq!(staged, vec!["remote_col0_0"], "product kernels stage their slots");
    }

    #[test]
    fn single_chunk_product_reads_receive_buffer_directly() {
        let (ctx, module) = lower_program_to_actors(&product_program(0), 1);
        assert!(verify(&ctx, module, &wse_csl::register_all()).is_empty());
        let staged = ctx
            .walk_named(module, csl::ZEROS)
            .into_iter()
            .filter_map(|z| csl::symbol_name(&ctx, z))
            .filter(|n| n.starts_with("remote_col"))
            .count();
        assert_eq!(staged, 0, "single-chunk product kernels skip staging");
    }

    #[test]
    fn buffers_and_linalg_ops_are_emitted() {
        let (ctx, module) = lower_to_actors(Benchmark::Seismic25, 2);
        // One buffer per field plus accumulator, scratch and recv staging.
        let buffers: Vec<&str> = ctx
            .walk_named(module, csl::ZEROS)
            .into_iter()
            .filter_map(|z| csl::symbol_name(&ctx, z))
            .collect();
        assert!(buffers.contains(&"p"));
        assert!(buffers.contains(&"accumulator"));
        assert!(buffers.contains(&"recv_buffer"));
        // Coefficient constants exist (one per distinct coefficient).
        assert!(!ctx.walk_named(module, csl::CONSTANTS).is_empty());
        // Compute is expressed as DPS linalg ops at this stage.
        assert!(!ctx.walk_named(module, linalg::MUL).is_empty());
        assert!(!ctx.walk_named(module, linalg::ADD).is_empty());
        assert!(!ctx.walk_named(module, linalg::COPY).is_empty());
    }
}
