//! Stencil-apply analysis: extraction of the polynomial normal form.
//!
//! Every stencil body produced by the front-ends (and by the paper's
//! benchmarks) is a low-degree polynomial over neighbor accesses.  Linear
//! bodies — `out = sum_i coeff_i * field_i[offset_i] (+ constant)` — are
//! the common case; nonlinear workloads (Burgers, shallow water) add
//! degree-2 terms `coeff · a[off_a] · b[off_b]`, captured per [`Term`] via
//! [`Term::factor2`].  The lowering passes operate on this normal form: it
//! is what makes splitting the reduction between remotely-received and
//! locally-held data (Section 4.1), coefficient promotion into the
//! communication path (Section 5.7), FMA generation, and the product
//! decomposition of degree-2 terms straightforward.  Degree 3 and above is
//! rejected with the stable code `non-linear-degree`.

use std::collections::HashMap;

use wse_dialects::{arith, stencil, varith};
use wse_ir::{IrContext, OpId, ValueId};

/// One access factor of a [`Term`]: which input is read at which offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Factor {
    /// Index of the accessed apply operand (which input temp).
    pub input: usize,
    /// Access offset (3-D before tensorization: `[dx, dy, dz]`).
    pub offset: Vec<i64>,
}

/// One term of a stencil polynomial combination:
/// `coeff · input[offset]`, or — when [`Term::factor2`] is set —
/// `coeff · (input[offset] · factor2.input[factor2.offset])`.
#[derive(Debug, Clone, PartialEq)]
pub struct Term {
    /// Index of the accessed apply operand (which input temp).
    pub input: usize,
    /// Access offset (3-D before tensorization: `[dx, dy, dz]`).
    pub offset: Vec<i64>,
    /// Multiplicative coefficient.
    pub coeff: f32,
    /// Second access factor of a degree-2 (product) term.  `None` for the
    /// linear case.  Canonically ordered: `(input, offset) <=
    /// (factor2.input, factor2.offset)` — f32 multiplication is bitwise
    /// commutative, so the swap is exact and makes equal products
    /// mergeable.
    pub factor2: Option<Factor>,
}

impl Term {
    /// Every access factor of the term (one for linear terms, two for
    /// products).
    pub fn factors(&self) -> Vec<Factor> {
        let mut factors = vec![Factor { input: self.input, offset: self.offset.clone() }];
        if let Some(f2) = &self.factor2 {
            factors.push(f2.clone());
        }
        factors
    }

    /// The polynomial degree of the term (1 or 2).
    pub fn degree(&self) -> usize {
        if self.factor2.is_some() {
            2
        } else {
            1
        }
    }

    /// True if the term only touches PE-local data after the z-column
    /// decomposition (no x/y offset on any factor).
    pub fn is_local(&self) -> bool {
        let local = |offset: &[i64]| {
            offset.first().copied().unwrap_or(0) == 0 && offset.get(1).copied().unwrap_or(0) == 0
        };
        local(&self.offset) && self.factor2.as_ref().map(|f| local(&f.offset)).unwrap_or(true)
    }

    /// The z-offset of the term's first factor (0 if the offset is 2-D).
    pub fn dz(&self) -> i64 {
        self.offset.get(2).copied().unwrap_or(0)
    }
}

/// The polynomial normal form of one apply result.  The name predates
/// degree-2 support; with every [`Term::factor2`] `None` it is exactly the
/// classic linear combination.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LinearCombination {
    /// The weighted access terms.
    pub terms: Vec<Term>,
    /// An additive constant (zero for all paper benchmarks).
    pub constant: f32,
}

impl LinearCombination {
    /// Terms requiring remote data (non-zero x/y offset on any factor).
    pub fn remote_terms(&self) -> Vec<&Term> {
        self.terms.iter().filter(|t| !t.is_local()).collect()
    }

    /// Terms computable from PE-local data.
    pub fn local_terms(&self) -> Vec<&Term> {
        self.terms.iter().filter(|t| t.is_local()).collect()
    }

    /// The polynomial degree of the combination (0 for pure constants).
    pub fn degree(&self) -> usize {
        self.terms.iter().map(Term::degree).max().unwrap_or(0)
    }

    /// Merges terms with identical factors by summing their coefficients,
    /// dropping terms whose coefficient becomes zero.
    pub fn simplified(&self) -> LinearCombination {
        let mut merged: Vec<Term> = Vec::new();
        for term in &self.terms {
            if let Some(existing) = merged.iter_mut().find(|t| {
                t.input == term.input && t.offset == term.offset && t.factor2 == term.factor2
            }) {
                existing.coeff += term.coeff;
            } else {
                merged.push(term.clone());
            }
        }
        merged.retain(|t| t.coeff != 0.0);
        LinearCombination { terms: merged, constant: self.constant }
    }

    /// The halo radius in x/y implied by the remote terms.
    pub fn xy_radius(&self) -> i64 {
        self.terms
            .iter()
            .flat_map(Term::factors)
            .map(|f| {
                f.offset
                    .first()
                    .copied()
                    .unwrap_or(0)
                    .abs()
                    .max(f.offset.get(1).copied().unwrap_or(0).abs())
            })
            .max()
            .unwrap_or(0)
    }

    /// The radius in z implied by the terms.
    pub fn z_radius(&self) -> i64 {
        self.terms
            .iter()
            .flat_map(Term::factors)
            .map(|f| f.offset.get(2).copied().unwrap_or(0).abs())
            .max()
            .unwrap_or(0)
    }

    /// Evaluates the combination given a resolver for `(input, offset)`.
    /// Product terms evaluate as `coeff * (factor1 * factor2)`, matching
    /// the engine's decomposed schedule (product first, then Mac).
    pub fn evaluate(&self, read: &impl Fn(usize, &[i64]) -> f32) -> f32 {
        self.constant
            + self
                .terms
                .iter()
                .map(|t| {
                    let mut v = read(t.input, &t.offset);
                    if let Some(f2) = &t.factor2 {
                        v *= read(f2.input, &f2.offset);
                    }
                    t.coeff * v
                })
                .sum::<f32>()
    }
}

/// Machine-readable classification of an [`AnalysisError`], so harnesses
/// can treat e.g. the nonlinear rejection as an *expected* outcome without
/// string-matching diagnostic text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnalysisErrorKind {
    /// The body multiplies non-constant subexpressions in a shape outside
    /// the supported normal form.  Degree-2 products now lower, so this
    /// kind is reserved for non-polynomial shapes; polynomial bodies whose
    /// degree merely exceeds the cap use [`Self::NonLinearDegree`].
    NonLinear,
    /// The body is a polynomial of degree above the decomposition cap
    /// (currently 2): a product of three or more accesses.
    NonLinearDegree,
    /// The body contains an operation outside the supported set.
    UnsupportedOp,
    /// The body is structurally malformed (missing block, offset, …).
    Malformed,
}

impl AnalysisErrorKind {
    /// Stable machine-readable code carried through [`wse_ir::PassError`]
    /// (and from there into compiler and conformance diagnostics).
    pub fn code(self) -> &'static str {
        match self {
            AnalysisErrorKind::NonLinear => "non-linear",
            AnalysisErrorKind::NonLinearDegree => "non-linear-degree",
            AnalysisErrorKind::UnsupportedOp => "unsupported-op",
            AnalysisErrorKind::Malformed => "malformed-body",
        }
    }
}

/// Error produced when an apply body is not a linear combination.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnalysisError {
    /// Description of the unsupported construct.
    pub message: String,
    /// Machine-readable classification.
    pub kind: AnalysisErrorKind,
    /// The offending operation, when the failure is attributable to one.
    pub op: Option<OpId>,
}

impl AnalysisError {
    /// Attaches the offending op (and names it in the message) when the
    /// error does not carry one yet.
    pub fn with_op(mut self, ctx: &IrContext, op: OpId) -> Self {
        if self.op.is_none() {
            self.op = Some(op);
            self.message = format!("{} (in {})", self.message, ctx.op_name(op));
        }
        self
    }

    /// Converts into a [`wse_ir::PassError`] carrying the machine-readable
    /// code.
    pub fn into_pass_error(self, pass: &str) -> wse_ir::PassError {
        wse_ir::PassError::new(pass, self.message).with_code(self.kind.code())
    }
}

impl std::fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "stencil analysis error [{}]: {}", self.kind.code(), self.message)
    }
}

impl std::error::Error for AnalysisError {}

fn error(message: impl Into<String>) -> AnalysisError {
    AnalysisError { message: message.into(), kind: AnalysisErrorKind::Malformed, op: None }
}

fn error_kind(kind: AnalysisErrorKind, message: impl Into<String>) -> AnalysisError {
    AnalysisError { message: message.into(), kind, op: None }
}

/// Symbolic value used during extraction.
#[derive(Debug, Clone, PartialEq)]
enum Symbolic {
    Constant(f32),
    Combination(LinearCombination),
}

/// Extracts the linear combination computed by each result of a
/// `stencil.apply` (or the scalar part of a tensorized apply).
///
/// # Errors
/// Returns an error if the body contains operations outside the supported
/// set (constants, accesses, `arith.addf/subf/mulf`, `varith.add/mul`).
pub fn analyze_apply(
    ctx: &IrContext,
    apply: OpId,
) -> Result<Vec<LinearCombination>, AnalysisError> {
    let body = stencil::apply_body(ctx, apply).ok_or_else(|| error("apply has no body block"))?;
    let block_args = ctx.block_args(body).to_vec();
    let arg_index: HashMap<ValueId, usize> =
        block_args.iter().copied().enumerate().map(|(i, v)| (v, i)).collect();

    let mut values: HashMap<ValueId, Symbolic> = HashMap::new();
    let mut return_values: Vec<ValueId> = Vec::new();

    for &op in ctx.block_ops(body) {
        let name = ctx.op_name(op).to_string();
        match name.as_str() {
            arith::CONSTANT => {
                let c = arith::constant_float_value(ctx, op)
                    .ok_or_else(|| error("non-float arith.constant in apply body"))?;
                values.insert(ctx.result(op, 0), Symbolic::Constant(c as f32));
            }
            stencil::ACCESS | "csl_stencil.access" => {
                let operand = ctx.operand(op, 0);
                let input = *arg_index
                    .get(&operand)
                    .ok_or_else(|| error("access operand is not an apply block argument"))?;
                let offset = ctx
                    .attr(op, "offset")
                    .and_then(wse_ir::Attribute::as_index_array)
                    .ok_or_else(|| error("access without offset"))?
                    .to_vec();
                values.insert(
                    ctx.result(op, 0),
                    Symbolic::Combination(LinearCombination {
                        terms: vec![Term { input, offset, coeff: 1.0, factor2: None }],
                        constant: 0.0,
                    }),
                );
            }
            arith::ADDF | arith::SUBF => {
                let lhs = resolve(&values, ctx.operand(op, 0))?;
                let rhs = resolve(&values, ctx.operand(op, 1))?;
                let negate = name == arith::SUBF;
                values.insert(ctx.result(op, 0), add_symbolic(lhs, rhs, negate));
            }
            varith::ADD => {
                let mut acc = Symbolic::Constant(0.0);
                for &operand in ctx.operands(op) {
                    let value = resolve(&values, operand)?;
                    acc = add_symbolic(acc, value, false);
                }
                values.insert(ctx.result(op, 0), acc);
            }
            arith::MULF => {
                let lhs = resolve(&values, ctx.operand(op, 0))?;
                let rhs = resolve(&values, ctx.operand(op, 1))?;
                let product = mul_symbolic(lhs, rhs).map_err(|e| e.with_op(ctx, op))?;
                values.insert(ctx.result(op, 0), product);
            }
            varith::MUL => {
                let mut iter = ctx.operands(op).iter();
                let first =
                    resolve(&values, *iter.next().ok_or_else(|| error("empty varith.mul"))?)?;
                let mut acc = first;
                for &operand in iter {
                    let value = resolve(&values, operand)?;
                    acc = mul_symbolic(acc, value).map_err(|e| e.with_op(ctx, op))?;
                }
                values.insert(ctx.result(op, 0), acc);
            }
            stencil::RETURN | "csl_stencil.yield" => {
                return_values = ctx.operands(op).to_vec();
            }
            other => {
                let mut e = error_kind(
                    AnalysisErrorKind::UnsupportedOp,
                    format!("unsupported op {other} in stencil body"),
                );
                e.op = Some(op);
                return Err(e);
            }
        }
    }

    return_values
        .iter()
        .map(|&v| match resolve(&values, v)? {
            Symbolic::Combination(c) => Ok(c.simplified()),
            Symbolic::Constant(c) => Ok(LinearCombination { terms: Vec::new(), constant: c }),
        })
        .collect()
}

fn resolve(values: &HashMap<ValueId, Symbolic>, v: ValueId) -> Result<Symbolic, AnalysisError> {
    values
        .get(&v)
        .cloned()
        .ok_or_else(|| error("value used in stencil body is not defined by a supported op"))
}

fn add_symbolic(lhs: Symbolic, rhs: Symbolic, negate_rhs: bool) -> Symbolic {
    let sign = if negate_rhs { -1.0 } else { 1.0 };
    match (lhs, rhs) {
        (Symbolic::Constant(a), Symbolic::Constant(b)) => Symbolic::Constant(a + sign * b),
        (Symbolic::Combination(a), Symbolic::Constant(b)) => {
            Symbolic::Combination(LinearCombination {
                terms: a.terms,
                constant: a.constant + sign * b,
            })
        }
        (Symbolic::Constant(a), Symbolic::Combination(b)) => {
            Symbolic::Combination(LinearCombination {
                terms: b.terms.into_iter().map(|t| Term { coeff: sign * t.coeff, ..t }).collect(),
                constant: a + sign * b.constant,
            })
        }
        (Symbolic::Combination(a), Symbolic::Combination(b)) => {
            let mut terms = a.terms;
            terms.extend(b.terms.into_iter().map(|t| Term { coeff: sign * t.coeff, ..t }));
            Symbolic::Combination(LinearCombination {
                terms,
                constant: a.constant + sign * b.constant,
            })
        }
    }
}

fn mul_symbolic(lhs: Symbolic, rhs: Symbolic) -> Result<Symbolic, AnalysisError> {
    match (lhs, rhs) {
        (Symbolic::Constant(a), Symbolic::Constant(b)) => Ok(Symbolic::Constant(a * b)),
        (Symbolic::Combination(c), Symbolic::Constant(k))
        | (Symbolic::Constant(k), Symbolic::Combination(c)) => {
            Ok(Symbolic::Combination(LinearCombination {
                terms: c.terms.into_iter().map(|t| Term { coeff: t.coeff * k, ..t }).collect(),
                constant: c.constant * k,
            }))
        }
        (Symbolic::Combination(a), Symbolic::Combination(b)) => {
            // Distribute (sum_i t_i + ca) * (sum_j u_j + cb) into degree-2
            // terms plus constant-scaled copies of each side.
            let mut terms: Vec<Term> = Vec::new();
            for ta in &a.terms {
                for tb in &b.terms {
                    terms.push(product_term(ta, tb)?);
                }
            }
            if b.constant != 0.0 {
                terms.extend(
                    a.terms.iter().map(|t| Term { coeff: t.coeff * b.constant, ..t.clone() }),
                );
            }
            if a.constant != 0.0 {
                terms.extend(
                    b.terms.iter().map(|t| Term { coeff: t.coeff * a.constant, ..t.clone() }),
                );
            }
            Ok(Symbolic::Combination(LinearCombination {
                terms,
                constant: a.constant * b.constant,
            }))
        }
    }
}

/// Multiplies two terms into one degree-2 term with canonically ordered
/// factors.  Errors with [`AnalysisErrorKind::NonLinearDegree`] when either
/// operand is already degree 2 (the resulting degree would exceed the cap).
fn product_term(a: &Term, b: &Term) -> Result<Term, AnalysisError> {
    if a.factor2.is_some() || b.factor2.is_some() {
        return Err(error_kind(
            AnalysisErrorKind::NonLinearDegree,
            "stencil body has polynomial degree above 2; only products of two accesses lower",
        ));
    }
    let fa = Factor { input: a.input, offset: a.offset.clone() };
    let fb = Factor { input: b.input, offset: b.offset.clone() };
    // f32 multiplication is bitwise commutative, so ordering the factors is
    // exact and canonicalizes a*b and b*a into one mergeable term.
    let (first, second) =
        if (fa.input, &fa.offset) <= (fb.input, &fb.offset) { (fa, fb) } else { (fb, fa) };
    Ok(Term {
        input: first.input,
        offset: first.offset,
        coeff: a.coeff * b.coeff,
        factor2: Some(second),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use wse_frontends::{benchmarks::Benchmark, emit_stencil_ir};

    fn first_apply(ir: &wse_frontends::StencilIr) -> OpId {
        ir.ctx.walk_named(ir.module, stencil::APPLY)[0]
    }

    #[test]
    fn jacobian_is_six_equal_terms() {
        let ir = emit_stencil_ir(&Benchmark::Jacobian.tiny_program()).unwrap();
        let combos = analyze_apply(&ir.ctx, first_apply(&ir)).unwrap();
        assert_eq!(combos.len(), 1);
        let combo = &combos[0];
        assert_eq!(combo.terms.len(), 6);
        assert!(combo.terms.iter().all(|t| (t.coeff - 0.16666).abs() < 1e-5));
        assert_eq!(combo.remote_terms().len(), 4);
        assert_eq!(combo.local_terms().len(), 2);
        assert_eq!(combo.xy_radius(), 1);
        assert_eq!(combo.z_radius(), 1);
    }

    #[test]
    fn seismic_has_25_terms_radius_4() {
        let ir = emit_stencil_ir(&Benchmark::Seismic25.tiny_program()).unwrap();
        let combos = analyze_apply(&ir.ctx, first_apply(&ir)).unwrap();
        let combo = &combos[0];
        assert_eq!(combo.terms.len(), 25);
        assert_eq!(combo.xy_radius(), 4);
        assert_eq!(combo.z_radius(), 4);
        // Coefficients decay with ring distance.
        let ring1 = combo.terms.iter().find(|t| t.offset == vec![1, 0, 0]).unwrap();
        let ring4 = combo.terms.iter().find(|t| t.offset == vec![4, 0, 0]).unwrap();
        assert!(ring1.coeff.abs() > ring4.coeff.abs());
    }

    #[test]
    fn acoustic_merges_repeated_center() {
        let ir = emit_stencil_ir(&Benchmark::Acoustic.tiny_program()).unwrap();
        // Second apply is the wave update (u + u - u_prev + ...).
        let apply = ir.ctx.walk_named(ir.module, stencil::APPLY)[1];
        let combos = analyze_apply(&ir.ctx, apply).unwrap();
        let combo = &combos[0];
        // The u-centre term must have been merged: coefficient ~ 2 - 6*0.0625*... — just
        // check that exactly one centre term per input remains.
        let center_terms: Vec<&Term> =
            combo.terms.iter().filter(|t| t.offset == vec![0, 0, 0]).collect();
        assert_eq!(center_terms.len(), 2, "one centre term per field after merging");
        assert!(center_terms.iter().any(|t| t.coeff < 0.0), "u_prev enters negatively");
        assert!(center_terms.iter().any(|t| t.coeff > 1.0), "2u - laplacian weight stays > 1");
    }

    #[test]
    fn evaluation_matches_manual_sum() {
        let combo = LinearCombination {
            terms: vec![
                Term { input: 0, offset: vec![1, 0, 0], coeff: 0.5, factor2: None },
                Term { input: 0, offset: vec![0, 0, 0], coeff: 0.25, factor2: None },
            ],
            constant: 1.0,
        };
        let value = combo.evaluate(&|_, offset| if offset[0] == 1 { 2.0 } else { 4.0 });
        assert!((value - 3.0).abs() < 1e-6);
    }

    #[test]
    fn simplification_removes_cancelling_terms() {
        let combo = LinearCombination {
            terms: vec![
                Term { input: 0, offset: vec![0, 0, 0], coeff: 1.0, factor2: None },
                Term { input: 0, offset: vec![0, 0, 0], coeff: -1.0, factor2: None },
                Term { input: 0, offset: vec![1, 0, 0], coeff: 2.0, factor2: None },
            ],
            constant: 0.0,
        };
        let simplified = combo.simplified();
        assert_eq!(simplified.terms.len(), 1);
        assert_eq!(simplified.terms[0].coeff, 2.0);
    }

    /// Builds an apply whose body multiplies `degree` accesses of one input
    /// together and returns the product.
    fn product_apply(ctx: &mut IrContext, degree: usize) -> OpId {
        use wse_dialects::{arith, builtin};
        use wse_ir::{OpBuilder, Type};
        let (_m, body) = builtin::module(ctx);
        let bounds = stencil::Bounds::new(vec![0, 0, 0], vec![4, 4, 4]);
        let temp_ty = stencil::temp_type(&bounds, Type::f32());
        let mut b = OpBuilder::at_end(ctx, body);
        let input = b.insert_value(wse_ir::OpSpec::new("tensor.empty").results([temp_ty.clone()]));
        let (apply, blk) = stencil::build_apply(&mut b, vec![input], vec![temp_ty]);
        let arg = ctx.block_args(blk)[0];
        let mut ab = OpBuilder::at_end(ctx, blk);
        let mut value = stencil::access(&mut ab, arg, &[0, 0, 0], Type::f32());
        for i in 1..degree {
            let next = stencil::access(&mut ab, arg, &[i as i64, 0, 0], Type::f32());
            value = arith::mulf(&mut ab, value, next);
        }
        stencil::build_return(ctx, blk, vec![value]);
        apply
    }

    #[test]
    fn product_of_two_accesses_is_a_degree_two_term() {
        let mut ctx = IrContext::new();
        let apply = product_apply(&mut ctx, 2);
        let combos = analyze_apply(&ctx, apply).unwrap();
        assert_eq!(combos.len(), 1);
        let combo = &combos[0];
        assert_eq!(combo.terms.len(), 1);
        assert_eq!(combo.degree(), 2);
        let term = &combo.terms[0];
        assert_eq!(term.coeff, 1.0);
        assert_eq!(term.offset, vec![0, 0, 0]);
        assert_eq!(
            term.factor2,
            Some(Factor { input: 0, offset: vec![1, 0, 0] }),
            "second access becomes the canonical second factor"
        );
        assert_eq!(combo.xy_radius(), 1, "radius accounts for the second factor");
    }

    #[test]
    fn commuted_products_merge_via_canonical_factor_order() {
        // a[1,0,0]*a[0,0,0] + a[0,0,0]*a[1,0,0] must merge into one term
        // with coefficient 2.
        let a = Term { input: 0, offset: vec![1, 0, 0], coeff: 1.0, factor2: None };
        let b = Term { input: 0, offset: vec![0, 0, 0], coeff: 1.0, factor2: None };
        let ab = product_term(&a, &b).unwrap();
        let ba = product_term(&b, &a).unwrap();
        assert_eq!(ab, ba);
        let combo = LinearCombination { terms: vec![ab, ba], constant: 0.0 }.simplified();
        assert_eq!(combo.terms.len(), 1);
        assert_eq!(combo.terms[0].coeff, 2.0);
    }

    #[test]
    fn degree_three_body_is_rejected_with_degree_code_and_op() {
        let mut ctx = IrContext::new();
        let apply = product_apply(&mut ctx, 3);
        let err = analyze_apply(&ctx, apply).unwrap_err();
        assert_eq!(err.kind, AnalysisErrorKind::NonLinearDegree);
        assert_eq!(err.kind.code(), "non-linear-degree");
        let op = err.op.expect("degree error points at the offending op");
        assert_eq!(ctx.op_name(op), arith::MULF, "the mulf that exceeded the cap is blamed");
    }

    #[test]
    fn degree_three_nested_under_adds_blames_the_inner_mulf() {
        use wse_dialects::{arith, builtin};
        use wse_ir::{OpBuilder, Type};
        let mut ctx = IrContext::new();
        let (_m, body) = builtin::module(&mut ctx);
        let bounds = stencil::Bounds::new(vec![0, 0, 0], vec![4, 4, 4]);
        let temp_ty = stencil::temp_type(&bounds, Type::f32());
        let mut b = OpBuilder::at_end(&mut ctx, body);
        let input = b.insert_value(wse_ir::OpSpec::new("tensor.empty").results([temp_ty.clone()]));
        let (apply, blk) = stencil::build_apply(&mut b, vec![input], vec![temp_ty]);
        let arg = ctx.block_args(blk)[0];
        let mut ab = OpBuilder::at_end(&mut ctx, blk);
        // (a0 + a0*a1*a2) + a1 — the cubic product hides under two adds.
        let a0 = stencil::access(&mut ab, arg, &[0, 0, 0], Type::f32());
        let a1 = stencil::access(&mut ab, arg, &[1, 0, 0], Type::f32());
        let a2 = stencil::access(&mut ab, arg, &[0, 1, 0], Type::f32());
        let p2 = arith::mulf(&mut ab, a0, a1);
        let p3 = arith::mulf(&mut ab, p2, a2);
        let s = arith::addf(&mut ab, a0, p3);
        let r = arith::addf(&mut ab, s, a1);
        stencil::build_return(&mut ctx, blk, vec![r]);
        let err = analyze_apply(&ctx, apply).unwrap_err();
        assert_eq!(err.kind, AnalysisErrorKind::NonLinearDegree);
        let op = err.op.expect("degree error points at the offending op");
        assert_eq!(op, ctx.defining_op(p3).expect("p3 is an op result"));
        assert!(err.message.contains(arith::MULF), "message names the offending op");
    }
}
