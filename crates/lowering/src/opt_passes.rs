//! Stencil- and arithmetic-level optimization passes (Section 5.7).
//!
//! * `stencil-inlining` merges consecutive `stencil.apply` operations into a
//!   single fused kernel (used by UVKBE).  The pass is *dependence-aware*:
//!   pairs whose naive fusion would miscompile (self-updating producers,
//!   fusion across interleaved applies that clobber a producer input) are
//!   first rewritten by renaming the hazarded field into a fresh
//!   double-buffer `stencil.field` (see the invariants below), which makes
//!   the fusion semantics-preserving again.
//! * `convert-arith-to-varith` collapses chains of binary additions /
//!   multiplications into variadic `varith` operations.
//! * `varith-fuse-repeated-operands` replaces repeated additions of the same
//!   value by a multiplication (important for the Acoustic kernel).
//!
//! # Double-buffer renaming invariants
//!
//! The actor lowering splits a fused multi-output apply back into
//! *sequential* kernels, each re-reading the live field buffers — so a
//! fused apply is only correct when every split kernel still observes the
//! field *versions* the original program order implied.  When a writer
//! apply `W` stores to field `f` and that write would be observed too
//! early after fusion (because `W` itself reads `f`, or because the
//! producer is moved past `W`), the pass renames `W`'s store into a fresh
//! field `f__dbufN` (a new kernel argument).  The rewrite maintains:
//!
//! 1. **Version redirection.**  Every `stencil.load` of `f` *after* `W`'s
//!    store and *before* the next store to `f` is redirected to
//!    `f__dbufN`; loads before the store (including `W`'s own operands)
//!    keep reading `f`.  Field reads therefore observe exactly the
//!    generation the original program order produced.
//! 2. **Live-out copy-back.**  When no later store to `f` exists in the
//!    timestep body, the renamed generation is the field's final value:
//!    an identity apply (`f = f__dbufN[0,0,0]`) is appended at the end of
//!    the body, so the observable field is correct between timesteps and
//!    at program exit.  When a later store exists, the copy-back is
//!    elided — the later store already produces the final generation.
//! 3. **Internal lifetime.**  Double-buffer fields are recorded in the
//!    kernel's `internal_fields` attribute.  They are real PE buffers all
//!    the way down (allocatable, exchangeable), but they are *not*
//!    observable program state: the simulators exclude them from grid
//!    state extraction (`wse-sim::GridState`), and the link-time
//!    optimizer excludes them from the always-live field set, which is
//!    what lets copy folding, snapshot elision, and dead-write elision
//!    fire on shapes a self-aliasing write-back used to block.
//!
//! Renaming alone is semantics-preserving (it only splits one buffer into
//! per-generation buffers), so the pass may rename and then still refuse
//! a fusion without breaking the program.

use std::collections::HashMap;

use wse_dialects::{arith, func, scf, stencil, varith};
use wse_ir::{
    Attribute, IrContext, OpBuilder, OpId, OpSpec, Pass, PassError, PassResult, Type, ValueId,
};

use crate::analysis::{analyze_apply, LinearCombination, Term};

/// Attribute (on the kernel `func.func`, later copied onto the program
/// `csl.module`) listing the double-buffer fields the inliner introduced.
/// These fields are internal: allocated and exchanged like any other
/// buffer, but excluded from observable grid state and from the link-time
/// optimizer's always-live set.
pub const INTERNAL_FIELDS_ATTR: &str = "internal_fields";

/// Attribute on a *fused* apply: operand indices whose loads semantically
/// read the apply's own freshly-written generation of a field (a consumer
/// operand that loaded a producer store target *after* the store).  Block
/// positions cannot encode this once fusion moves the store past the load,
/// so the marks carry the version truth: the self-update hazard check
/// skips marked operands (the split-kernel order already delivers the new
/// generation), and a store rename redirects them to the double buffer.
const READS_UPDATED_ATTR: &str = "reads_updated";

/// Operand indices of `apply` marked as reading the apply's own updated
/// generation (empty for never-fused applies).
fn updated_reads(ctx: &IrContext, apply: OpId) -> Vec<usize> {
    ctx.attr(apply, READS_UPDATED_ATTR)
        .and_then(Attribute::as_index_array)
        .map(|a| a.iter().map(|&i| i as usize).collect())
        .unwrap_or_default()
}

/// True when `load` feeds some apply as a marked updated-generation
/// operand: the load binds to that apply's own store, never to an earlier
/// store of the same field, so position-based redirection must skip it.
fn is_updated_read(ctx: &IrContext, load: OpId) -> bool {
    let result = ctx.result(load, 0);
    ctx.uses_of(result).into_iter().any(|(user, idx)| {
        ctx.op_name(user) == stencil::APPLY && updated_reads(ctx, user).contains(&idx)
    })
}

// --------------------------------------------------------------------------
// stencil-inlining
// --------------------------------------------------------------------------

/// Fuses consecutive `stencil.apply` operations where the first apply's
/// result feeds the second, double-buffering hazarded fields first when
/// the naive fusion would reorder a dependence (see the module docs).
#[derive(Debug, Default, Clone, Copy)]
pub struct StencilInlining;

impl Pass for StencilInlining {
    fn name(&self) -> &str {
        "stencil-inlining"
    }

    fn run(&self, ctx: &mut IrContext, module: OpId) -> PassResult {
        // Each iteration either fuses a pair (apply count shrinks) or
        // renames hazarded stores (each store is renamed at most once), so
        // the loop terminates; the valve only guards against rewrite bugs.
        let mut valve = 10_000usize;
        loop {
            valve = valve
                .checked_sub(1)
                .ok_or_else(|| PassError::new(self.name(), "inlining did not reach a fixpoint"))?;
            match find_fusion_candidate(ctx, module) {
                Some((producer, consumer, FusionPlan::Safe)) => {
                    fuse_applies(ctx, producer, consumer)
                        .map_err(|e| e.into_pass_error(self.name()))?;
                }
                Some((_, _, FusionPlan::Rename(stores))) => {
                    // Rename first; the next iteration re-evaluates the
                    // pair (now hazard-free) and fuses it.  Renaming is
                    // semantics-preserving on its own, so a pair that
                    // still fails re-evaluation is merely left unfused.
                    for store in stores {
                        double_buffer_store(ctx, store)
                            .map_err(|m| PassError::new(self.name(), m))?;
                    }
                }
                Some((_, _, FusionPlan::Unsafe)) | None => return Ok(()),
            }
        }
    }
}

/// How (and whether) a producer/consumer pair can be fused.
#[derive(Debug, Clone, PartialEq, Eq)]
enum FusionPlan {
    /// Fusion preserves semantics as-is.
    Safe,
    /// Fusion preserves semantics once the targets of these stores are
    /// renamed into double-buffer fields.
    Rename(Vec<OpId>),
    /// No rewrite in this pass's repertoire makes the fusion sound.
    Unsafe,
}

/// Finds a pair (producer, consumer) of applies in the same block where the
/// producer's results are only consumed by the consumer (and by stores),
/// preferring pairs that are fusable outright over pairs that first need
/// double-buffer renaming.
fn find_fusion_candidate(ctx: &IrContext, module: OpId) -> Option<(OpId, OpId, FusionPlan)> {
    let mut renameable: Option<(OpId, OpId, FusionPlan)> = None;
    for producer in ctx.walk_named(module, stencil::APPLY) {
        for &result in ctx.results(producer) {
            let uses = ctx.uses_of(result);
            let consumers: Vec<OpId> = uses
                .iter()
                .map(|(op, _)| *op)
                .filter(|&op| ctx.op_name(op) == stencil::APPLY)
                .collect();
            if consumers.len() != 1 {
                continue;
            }
            let consumer = consumers[0];
            if consumer == producer {
                continue;
            }
            // Everything else must be a store (which the fused apply keeps
            // feeding) for the fusion to be semantics-preserving.
            let all_supported =
                uses.iter().all(|(op, _)| *op == consumer || ctx.op_name(*op) == stencil::STORE);
            if !all_supported || ctx.parent_block(producer) != ctx.parent_block(consumer) {
                continue;
            }
            match fusion_plan(ctx, producer, consumer) {
                FusionPlan::Safe => return Some((producer, consumer, FusionPlan::Safe)),
                plan @ FusionPlan::Rename(_) => {
                    renameable.get_or_insert((producer, consumer, plan));
                }
                FusionPlan::Unsafe => {}
            }
        }
    }
    renameable
}

/// The `stencil.store` ops consuming an apply's results, with their target
/// fields.
fn stores_of(ctx: &IrContext, apply: OpId) -> Vec<(OpId, ValueId)> {
    ctx.results(apply)
        .iter()
        .flat_map(|&r| ctx.uses_of(r))
        .filter(|(op, idx)| ctx.op_name(*op) == stencil::STORE && *idx == 0)
        .map(|(store, _)| (store, ctx.operand(store, 1)))
        .collect()
}

/// Dependence analysis for inlining `producer` into `consumer`.
///
/// The actor lowering runs one kernel per apply, in block order, each
/// reading live field buffers; fusion moves the producer's computation
/// (and its stores) down to the consumer's position.  The hazards, in
/// those terms:
///
/// * a producer store target backing a producer operand (self-updating
///   stencil): downstream kernels re-reading the written buffer would
///   observe the new generation where the substituted combination needs
///   the old one — fixable by double-buffering the producer's store;
/// * an interleaved apply writing a field the producer reads: the moved
///   producer would observe the middle's write — fixable by
///   double-buffering the middle's store;
/// * an interleaved apply *reading* a field the producer writes, or
///   writing a field the producer writes (WAW): the reorder is inherent
///   to moving the producer — unfixable, the pair stays unfused.
fn fusion_plan(ctx: &IrContext, producer: OpId, consumer: OpId) -> FusionPlan {
    let (Some(block), Some(p_idx), Some(c_idx)) = (
        ctx.parent_block(producer),
        ctx.op_index_in_block(producer),
        ctx.op_index_in_block(consumer),
    ) else {
        return FusionPlan::Unsafe;
    };
    if p_idx >= c_idx {
        return FusionPlan::Unsafe;
    }
    // Nonlinear bodies belong to decompose-products, not fusion:
    // substituting a producer combination into a product factor (or fusing
    // a degree-2 producer) would raise the polynomial degree past the cap.
    // Analysis *errors* are also left alone so they keep surfacing at
    // distribute-stencil with their own code instead of failing this pass.
    let linear = |apply: OpId| matches!(analyze_apply(ctx, apply), Ok(combos) if combos.iter().all(|c| c.degree() < 2));
    if !linear(producer) || !linear(consumer) {
        return FusionPlan::Unsafe;
    }
    let p_stores = stores_of(ctx, producer);
    let s_p: Vec<ValueId> = p_stores.iter().map(|&(_, f)| f).collect();
    let r_p: Vec<ValueId> =
        ctx.operands(producer).iter().filter_map(|&v| backing_field(ctx, v)).collect();
    // Operands that deliberately read the producer's own updated
    // generation (marked during an earlier fusion) are not hazards: the
    // split-kernel order already runs the writing kernel first.
    let marked = updated_reads(ctx, producer);
    let hazard_fields: Vec<ValueId> = ctx
        .operands(producer)
        .iter()
        .enumerate()
        .filter(|(i, _)| !marked.contains(i))
        .filter_map(|(_, &v)| backing_field(ctx, v))
        .collect();

    let mut renames: Vec<OpId> = Vec::new();
    // Self-updating producer: double-buffer every store whose target backs
    // a producer operand reading the *previous* generation.
    for &(store, field) in &p_stores {
        if hazard_fields.contains(&field) {
            if s_p.iter().filter(|&&f| f == field).count() > 1 {
                // Two producer generations of one field: renaming cannot
                // tell which one a read binds to.
                return FusionPlan::Unsafe;
            }
            renames.push(store);
        }
    }
    // Consumer operands that load a producer store target.  The load's
    // position (still truthful here — fusion is what scrambles it) tells
    // which generation it reads: after the store it reads the fresh
    // generation (fine as-is; marked during fusion so later rewrites keep
    // the binding), before the store it reads the previous generation,
    // which the fused kernel order would destroy — double-buffer the
    // store instead.
    let consumer_marked = updated_reads(ctx, consumer);
    for (idx, &operand) in ctx.operands(consumer).iter().enumerate() {
        if consumer_marked.contains(&idx) {
            continue; // binds to the consumer's own store
        }
        let Some(def) = ctx.defining_op(operand) else { continue };
        if ctx.op_name(def) != stencil::LOAD {
            continue;
        }
        let field = ctx.operand(def, 0);
        let matching: Vec<&(OpId, ValueId)> =
            p_stores.iter().filter(|&&(_, f)| f == field).collect();
        let Some(&&(store, _)) = matching.first() else { continue };
        if matching.len() > 1 {
            return FusionPlan::Unsafe;
        }
        if ctx.parent_block(def) != Some(block) {
            // A load outside the pair's block has no position to compare.
            return FusionPlan::Unsafe;
        }
        let (Some(load_idx), Some(store_idx)) =
            (ctx.op_index_in_block(def), ctx.op_index_in_block(store))
        else {
            return FusionPlan::Unsafe;
        };
        if load_idx < store_idx && !renames.contains(&store) {
            renames.push(store);
        }
    }
    // Consumer stores of fields the producer's operands read.
    // Substitution turns every consumer combo that referenced a producer
    // result into terms over the producer's operands, so *later* consumer
    // results re-read those fields; an earlier consumer result's store
    // would clobber the generation mid-split.  Double-buffer every such
    // store except the final result's (nothing in the fused apply reads
    // after the last kernel).
    let c_results = ctx.results(consumer).to_vec();
    for (store, field) in stores_of(ctx, consumer) {
        if !r_p.contains(&field) {
            continue;
        }
        let value = ctx.operand(store, 0);
        let is_last = c_results.last() == Some(&value);
        if !is_last && !renames.contains(&store) {
            renames.push(store);
        }
    }
    // Interleaved applies between the pair.
    for &op in &ctx.block_ops(block)[p_idx + 1..c_idx] {
        if ctx.op_name(op) != stencil::APPLY {
            continue;
        }
        // The middle reading a field the producer writes needs the
        // producer's value before the fused position computes it.
        let reads: Vec<ValueId> =
            ctx.operands(op).iter().filter_map(|&v| backing_field(ctx, v)).collect();
        if reads.iter().any(|f| s_p.contains(f)) {
            return FusionPlan::Unsafe;
        }
        for (m_store, m_field) in stores_of(ctx, op) {
            if s_p.contains(&m_field) {
                // Write-after-write: moving the producer flips the order.
                return FusionPlan::Unsafe;
            }
            if r_p.contains(&m_field) && !renames.contains(&m_store) {
                renames.push(m_store);
            }
        }
    }
    if renames.is_empty() {
        FusionPlan::Safe
    } else {
        FusionPlan::Rename(renames)
    }
}

/// The `stencil.field` value backing an apply operand: the source of its
/// defining load, or (for a forwarded apply result) that result's store
/// target.
fn backing_field(ctx: &IrContext, value: ValueId) -> Option<ValueId> {
    let def = ctx.defining_op(value)?;
    match ctx.op_name(def) {
        name if name == stencil::LOAD => Some(ctx.operand(def, 0)),
        name if name == stencil::APPLY => ctx
            .uses_of(value)
            .into_iter()
            .find(|(op, idx)| ctx.op_name(*op) == stencil::STORE && *idx == 0)
            .map(|(store, _)| ctx.operand(store, 1)),
        _ => None,
    }
}

/// The `func.func` ancestor of an op.
pub(crate) fn enclosing_func(ctx: &IrContext, op: OpId) -> Option<OpId> {
    let mut current = op;
    loop {
        if ctx.op_name(current) == func::FUNC {
            return Some(current);
        }
        current = ctx.parent_op(current)?;
    }
}

/// Appends a fresh *internal* field argument to a kernel function: a new
/// entry block argument of `field_ty`, registered in `field_names`, in the
/// [`INTERNAL_FIELDS_ATTR`] list and in the function type.  `make_name`
/// receives the current internal-field count so callers can mint unique
/// names.  Returns the new argument and its name.  Shared by the inliner's
/// double-buffer renaming and by `decompose-products` scratch fields.
pub(crate) fn add_internal_field(
    ctx: &mut IrContext,
    func_op: OpId,
    field_ty: Type,
    make_name: impl FnOnce(usize) -> String,
) -> Result<(ValueId, String), String> {
    let entry = func::func_body(ctx, func_op).ok_or("kernel function has no body")?;
    let mut field_names: Vec<String> = ctx
        .attr(func_op, "field_names")
        .and_then(Attribute::as_array)
        .map(|a| a.iter().filter_map(|x| x.as_str().map(str::to_string)).collect())
        .unwrap_or_default();
    let mut internal: Vec<String> = ctx
        .attr(func_op, INTERNAL_FIELDS_ATTR)
        .and_then(Attribute::as_array)
        .map(|a| a.iter().filter_map(|x| x.as_str().map(str::to_string)).collect())
        .unwrap_or_default();
    let name = make_name(internal.len());
    let new_arg = ctx.add_block_arg(entry, field_ty.clone());
    while field_names.len() < ctx.block_args(entry).len() - 1 {
        field_names.push(format!("field{}", field_names.len()));
    }
    field_names.push(name.clone());
    internal.push(name.clone());
    ctx.set_attr(
        func_op,
        "field_names",
        Attribute::Array(field_names.into_iter().map(Attribute::str).collect()),
    );
    ctx.set_attr(
        func_op,
        INTERNAL_FIELDS_ATTR,
        Attribute::Array(internal.into_iter().map(Attribute::str).collect()),
    );
    if let Some(Type::Function { mut inputs, results }) =
        ctx.attr(func_op, "function_type").and_then(Attribute::as_type).cloned()
    {
        inputs.push(field_ty);
        ctx.set_attr(func_op, "function_type", Attribute::Type(Type::Function { inputs, results }));
    }
    Ok((new_arg, name))
}

/// Renames the target of `store` into a fresh double-buffer field: a new
/// kernel argument takes the write, every load of the old field between
/// this store and the field's next store is redirected to the new
/// generation, and an identity copy-back apply restores the original
/// field at the end of the timestep body when this was its last store
/// (the field is live-out of the renamed generation).  See the module
/// docs for the invariants.
fn double_buffer_store(ctx: &mut IrContext, store: OpId) -> Result<(), String> {
    let field = ctx.operand(store, 1);
    let block = ctx.parent_block(store).ok_or("store is not attached to a block")?;
    let store_idx = ctx.op_index_in_block(store).ok_or("store has no block index")?;
    let func_op = enclosing_func(ctx, store).ok_or("store is not inside a kernel function")?;
    let entry = func::func_body(ctx, func_op).ok_or("kernel function has no body")?;
    let arg_index = ctx
        .block_args(entry)
        .iter()
        .position(|&a| a == field)
        .ok_or("store target is not a kernel field argument")?;

    // Fresh field argument named after the original field.
    let base_name = ctx
        .attr(func_op, "field_names")
        .and_then(Attribute::as_array)
        .and_then(|a| a.get(arg_index).and_then(|x| x.as_str().map(str::to_string)))
        .unwrap_or_else(|| format!("field{arg_index}"));
    let field_ty = ctx.value_type(field).clone();
    let (new_arg, _) =
        add_internal_field(ctx, func_op, field_ty, |n| format!("{base_name}__dbuf{n}"))?;

    // Retarget the write.
    let temp = ctx.operand(store, 0);
    ctx.set_operands(store, vec![temp, new_arg]);

    // Redirect downstream loads of the old generation, up to (not
    // including) the field's next store.  Marked updated-generation loads
    // are skipped: they bind to their own apply's store, not to this one
    // (handled below when that store is this one).
    let ops = ctx.block_ops(block).to_vec();
    let next_store_idx = ops[store_idx + 1..]
        .iter()
        .position(|&op| ctx.op_name(op) == stencil::STORE && ctx.operand(op, 1) == field)
        .map(|i| store_idx + 1 + i);
    for &op in &ops[store_idx + 1..next_store_idx.unwrap_or(ops.len())] {
        if ctx.op_name(op) == stencil::LOAD
            && ctx.operand(op, 0) == field
            && !is_updated_read(ctx, op)
        {
            ctx.set_operands(op, vec![new_arg]);
        }
    }

    // Marked operands of the renamed apply that read this very store's
    // generation follow the write into the double buffer: their loads are
    // SSA values, so every user of the load wanted exactly this
    // generation and the redirect is uniform.
    if let Some(apply) = ctx.defining_op(temp).filter(|&a| ctx.op_name(a) == stencil::APPLY) {
        for idx in updated_reads(ctx, apply) {
            let operand = ctx.operand(apply, idx);
            if let Some(load) = ctx
                .defining_op(operand)
                .filter(|&def| ctx.op_name(def) == stencil::LOAD && ctx.operand(def, 0) == field)
            {
                ctx.set_operands(load, vec![new_arg]);
            }
        }
    }

    // Live-out copy-back: only when no later store produces a newer
    // generation of the original field.
    if next_store_idx.is_none() {
        let bounds = stencil::store_bounds(ctx, store)
            .ok_or("renamed store is missing its bound attributes")?;
        let terminator = ops.last().copied().filter(|&op| {
            let name = ctx.op_name(op);
            name == scf::YIELD || name == func::RETURN
        });
        let mut b = match terminator {
            Some(term) => OpBuilder::before(ctx, term),
            None => OpBuilder::at_end(ctx, block),
        };
        let temp = stencil::load(&mut b, new_arg);
        let result_ty = stencil::temp_type(&bounds, Type::f32());
        let (apply, body) = stencil::build_apply(&mut b, vec![temp], vec![result_ty]);
        let rank = bounds.rank();
        emit_combination_body(
            ctx,
            body,
            &[LinearCombination {
                terms: vec![Term { input: 0, offset: vec![0; rank], coeff: 1.0, factor2: None }],
                constant: 0.0,
            }],
        );
        let copied = ctx.result(apply, 0);
        let mut b = OpBuilder::after(ctx, apply);
        stencil::store(&mut b, copied, field, &bounds);
    }
    Ok(())
}

fn fuse_applies(
    ctx: &mut IrContext,
    producer: OpId,
    consumer: OpId,
) -> Result<(), crate::analysis::AnalysisError> {
    let producer_combos = analyze_apply(ctx, producer)?;
    let consumer_combos = analyze_apply(ctx, consumer)?;
    let producer_operands = ctx.operands(producer).to_vec();
    let consumer_operands = ctx.operands(consumer).to_vec();
    let producer_results = ctx.results(producer).to_vec();
    let consumer_results = ctx.results(consumer).to_vec();

    // Fused operand list: producer operands followed by the consumer
    // operands that are not producer results.
    let mut fused_operands = producer_operands.clone();
    let mut consumer_operand_map: HashMap<usize, OperandSource> = HashMap::new();
    for (idx, &operand) in consumer_operands.iter().enumerate() {
        if let Some(res_idx) = producer_results.iter().position(|&r| r == operand) {
            consumer_operand_map.insert(idx, OperandSource::ProducerResult(res_idx));
        } else if let Some(pos) = fused_operands.iter().position(|&o| o == operand) {
            consumer_operand_map.insert(idx, OperandSource::Operand(pos));
        } else {
            fused_operands.push(operand);
            consumer_operand_map.insert(idx, OperandSource::Operand(fused_operands.len() - 1));
        }
    }

    // Remap producer combos (their input indices are already positions in
    // `fused_operands` because producer operands come first).
    let mut fused_combos: Vec<LinearCombination> = producer_combos.clone();
    // Compose consumer combos.
    for combo in &consumer_combos {
        let mut terms: Vec<Term> = Vec::new();
        let mut constant = combo.constant;
        for term in &combo.terms {
            match consumer_operand_map.get(&term.input) {
                Some(OperandSource::Operand(pos)) => {
                    terms.push(Term { input: *pos, ..term.clone() });
                }
                Some(OperandSource::ProducerResult(res_idx)) => {
                    // Substitute the producer's combination, shifting its
                    // offsets by the consumer access offset and scaling
                    // both its terms and its additive constant by the
                    // consumer coefficient.
                    for inner in &producer_combos[*res_idx].terms {
                        let offset: Vec<i64> = inner
                            .offset
                            .iter()
                            .zip(term.offset.iter().chain(std::iter::repeat(&0)))
                            .map(|(a, b)| a + b)
                            .collect();
                        // Both sides are linear here (fusion_plan refuses
                        // nonlinear pairs), so no factor2 to propagate.
                        terms.push(Term {
                            input: inner.input,
                            offset,
                            coeff: inner.coeff * term.coeff,
                            factor2: None,
                        });
                    }
                    constant += term.coeff * producer_combos[*res_idx].constant;
                }
                None => {
                    return Err(crate::analysis::AnalysisError {
                        message: "inconsistent consumer operand map".into(),
                        kind: crate::analysis::AnalysisErrorKind::Malformed,
                        op: Some(consumer),
                    })
                }
            }
        }
        fused_combos.push(LinearCombination { terms, constant }.simplified());
    }

    // Result types: producer results then consumer results.
    let mut result_types: Vec<Type> =
        producer_results.iter().map(|&r| ctx.value_type(r).clone()).collect();
    result_types.extend(consumer_results.iter().map(|&r| ctx.value_type(r).clone()));

    // Updated-generation marks for the fused apply: the producer's marks
    // keep their positions (its operands come first); a consumer operand
    // is marked when it inherits the consumer's own mark or when it loads
    // a field the producer stores *after* that store (position is still
    // truthful here; the move below is what scrambles it).
    let producer_store_positions: Vec<(ValueId, Option<usize>)> = stores_of(ctx, producer)
        .iter()
        .map(|&(store, field)| (field, ctx.op_index_in_block(store)))
        .collect();
    let consumer_marked = updated_reads(ctx, consumer);
    let mut fused_marks: Vec<i64> =
        updated_reads(ctx, producer).iter().map(|&i| i as i64).collect();
    for (idx, &operand) in consumer_operands.iter().enumerate() {
        let Some(OperandSource::Operand(pos)) = consumer_operand_map.get(&idx) else { continue };
        let inherited = consumer_marked.contains(&idx);
        let fresh_read = ctx
            .defining_op(operand)
            .filter(|&def| ctx.op_name(def) == stencil::LOAD)
            .is_some_and(|def| {
                let field = ctx.operand(def, 0);
                let store_pos = producer_store_positions
                    .iter()
                    .find(|&&(f, _)| f == field)
                    .and_then(|&(_, pos)| pos);
                match (ctx.op_index_in_block(def), store_pos) {
                    (Some(l), Some(s)) => l > s,
                    _ => false,
                }
            });
        if (inherited || fresh_read) && !fused_marks.contains(&(*pos as i64)) {
            fused_marks.push(*pos as i64);
        }
    }

    // Build the fused apply at the consumer's position.
    let mut b = OpBuilder::before(ctx, consumer);
    let (fused, body) = stencil::build_apply(&mut b, fused_operands, result_types);
    emit_combination_body(ctx, body, &fused_combos);
    if !fused_marks.is_empty() {
        ctx.set_attr(fused, READS_UPDATED_ATTR, Attribute::IndexArray(fused_marks));
    }

    // Rewire uses.
    let fused_results = ctx.results(fused).to_vec();
    for (i, &old) in producer_results.iter().enumerate() {
        ctx.replace_all_uses(old, fused_results[i]);
    }
    for (i, &old) in consumer_results.iter().enumerate() {
        ctx.replace_all_uses(old, fused_results[producer_results.len() + i]);
    }
    // Stores of producer results may sit before the fused apply; move them
    // after it to preserve dominance.
    let fused_index = ctx.op_index_in_block(fused).expect("fused apply is attached");
    let block = ctx.parent_block(fused).expect("fused apply is attached");
    let mut insert_at = fused_index + 1;
    for store in ctx.walk_named(ctx.parent_op(fused).unwrap_or(fused), stencil::STORE) {
        if ctx.parent_block(store) == Some(block) {
            let idx = ctx.op_index_in_block(store).unwrap_or(usize::MAX);
            if idx < fused_index && fused_results.contains(&ctx.operand(store, 0)) {
                ctx.detach_op(store);
                let new_fused_index = ctx.op_index_in_block(fused).expect("still attached");
                insert_at = insert_at.min(new_fused_index + 1);
                ctx.insert_op(block, new_fused_index + 1, store);
            }
        }
    }
    ctx.erase_op(consumer);
    ctx.erase_op(producer);
    Ok(())
}

#[derive(Debug, Clone, Copy)]
enum OperandSource {
    Operand(usize),
    ProducerResult(usize),
}

/// Emits the scalar body of a `stencil.apply` from polynomial combinations
/// (degree-2 terms multiply their two accesses before the coefficient).
pub fn emit_combination_body(
    ctx: &mut IrContext,
    body: wse_ir::BlockId,
    combos: &[LinearCombination],
) {
    let args = ctx.block_args(body).to_vec();
    let mut results = Vec::new();
    let mut b = OpBuilder::at_end(ctx, body);
    for combo in combos {
        let mut acc: Option<ValueId> = None;
        for term in &combo.terms {
            let access = stencil::access(&mut b, args[term.input], &term.offset, Type::f32());
            let value = match &term.factor2 {
                Some(f2) => {
                    let access2 = stencil::access(&mut b, args[f2.input], &f2.offset, Type::f32());
                    arith::mulf(&mut b, access, access2)
                }
                None => access,
            };
            let coeff = arith::constant_f32(&mut b, term.coeff, Type::f32());
            let scaled = arith::mulf(&mut b, value, coeff);
            acc = Some(match acc {
                Some(prev) => arith::addf(&mut b, prev, scaled),
                None => scaled,
            });
        }
        let mut value = acc.unwrap_or_else(|| arith::constant_f32(&mut b, 0.0, Type::f32()));
        if combo.constant != 0.0 {
            let c = arith::constant_f32(&mut b, combo.constant, Type::f32());
            value = arith::addf(&mut b, value, c);
        }
        results.push(value);
    }
    stencil::build_return(ctx, body, results);
}

// --------------------------------------------------------------------------
// convert-arith-to-varith
// --------------------------------------------------------------------------

/// Collapses trees of `arith.addf` / `arith.mulf` into variadic `varith`
/// operations.
#[derive(Debug, Default, Clone, Copy)]
pub struct ConvertArithToVarith;

impl Pass for ConvertArithToVarith {
    fn name(&self) -> &str {
        "convert-arith-to-varith"
    }

    fn run(&self, ctx: &mut IrContext, module: OpId) -> PassResult {
        for (arith_name, varith_name) in [(arith::ADDF, varith::ADD), (arith::MULF, varith::MUL)] {
            // Roots: ops of this kind whose result is not consumed by the
            // same kind of op.
            let candidates = ctx.walk_named(module, arith_name);
            for root in candidates {
                if !ctx.op_is_live(root) {
                    continue;
                }
                let result = ctx.result(root, 0);
                let used_by_same =
                    ctx.uses_of(result).iter().any(|(op, _)| ctx.op_name(*op) == arith_name);
                if used_by_same {
                    continue;
                }
                let mut leaves = Vec::new();
                let mut to_erase = Vec::new();
                collect_leaves(ctx, root, arith_name, &mut leaves, &mut to_erase);
                if leaves.len() < 3 {
                    continue;
                }
                let ty = ctx.value_type(result).clone();
                let mut b = OpBuilder::before(ctx, root);
                let fused =
                    b.insert_value(OpSpec::new(varith_name).operands(leaves.clone()).results([ty]));
                ctx.replace_all_uses(result, fused);
                for op in to_erase {
                    if ctx.op_is_live(op) && !ctx.results(op).iter().any(|&r| ctx.has_uses(r)) {
                        ctx.erase_op(op);
                    }
                }
            }
        }
        Ok(())
    }
}

fn collect_leaves(
    ctx: &IrContext,
    op: OpId,
    kind: &str,
    leaves: &mut Vec<ValueId>,
    to_erase: &mut Vec<OpId>,
) {
    to_erase.push(op);
    for &operand in ctx.operands(op) {
        let nested = ctx
            .defining_op(operand)
            .filter(|&d| ctx.op_name(d) == kind && ctx.uses_of(ctx.result(d, 0)).len() == 1);
        match nested {
            Some(inner) => collect_leaves(ctx, inner, kind, leaves, to_erase),
            None => leaves.push(operand),
        }
    }
}

// --------------------------------------------------------------------------
// varith-fuse-repeated-operands
// --------------------------------------------------------------------------

/// Replaces repeated operands of a `varith.add` by a single multiplication
/// (`x + x + x` becomes `3 * x`).
#[derive(Debug, Default, Clone, Copy)]
pub struct VarithFuseRepeatedOperands;

impl Pass for VarithFuseRepeatedOperands {
    fn name(&self) -> &str {
        "varith-fuse-repeated-operands"
    }

    fn run(&self, ctx: &mut IrContext, module: OpId) -> PassResult {
        for op in ctx.walk_named(module, varith::ADD) {
            if !ctx.op_is_live(op) {
                continue;
            }
            let operands = ctx.operands(op).to_vec();
            let mut counts: Vec<(ValueId, usize)> = Vec::new();
            for &operand in &operands {
                if let Some(entry) = counts.iter_mut().find(|(v, _)| *v == operand) {
                    entry.1 += 1;
                } else {
                    counts.push((operand, 1));
                }
            }
            if counts.iter().all(|(_, c)| *c == 1) {
                continue;
            }
            let mut new_operands = Vec::new();
            let mut b = OpBuilder::before(ctx, op);
            for (value, count) in counts {
                if count == 1 {
                    new_operands.push(value);
                } else {
                    let ty = b.ctx_ref().value_type(value).clone();
                    let factor = arith::constant_f32(&mut b, count as f32, ty);
                    let scaled = arith::mulf(&mut b, value, factor);
                    new_operands.push(scaled);
                }
            }
            ctx.set_operands(op, new_operands);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wse_frontends::{benchmarks::Benchmark, emit_stencil_ir};
    use wse_ir::verify;

    fn registry() -> wse_ir::DialectRegistry {
        wse_csl::register_all()
    }

    #[test]
    fn uvkbe_applies_are_fused() {
        let ir = emit_stencil_ir(&Benchmark::Uvkbe.tiny_program()).unwrap();
        let mut ctx = ir.ctx;
        assert_eq!(ctx.walk_named(ir.module, stencil::APPLY).len(), 2);
        StencilInlining.run(&mut ctx, ir.module).unwrap();
        let applies = ctx.walk_named(ir.module, stencil::APPLY);
        assert_eq!(applies.len(), 1, "consecutive applies must be fused into one");
        assert_eq!(ctx.results(applies[0]).len(), 2, "fused apply keeps both outputs");
        assert!(verify(&ctx, ir.module, &registry()).is_empty());
        // Both stores remain and now consume the fused apply's results.
        let stores = ctx.walk_named(ir.module, stencil::STORE);
        assert_eq!(stores.len(), 2);
        for store in stores {
            assert_eq!(ctx.defining_op(ctx.operand(store, 0)), Some(applies[0]));
        }
    }

    #[test]
    fn fused_combination_composes_coefficients() {
        let ir = emit_stencil_ir(&Benchmark::Uvkbe.tiny_program()).unwrap();
        let mut ctx = ir.ctx;
        // Reference semantics of the second equation before fusion.
        let before =
            analyze_apply(&ctx, ctx.walk_named(ir.module, stencil::APPLY)[1]).unwrap()[0].clone();
        StencilInlining.run(&mut ctx, ir.module).unwrap();
        let fused = ctx.walk_named(ir.module, stencil::APPLY)[0];
        let combos = analyze_apply(&ctx, fused).unwrap();
        assert_eq!(combos.len(), 2);
        // The second output previously read the first output's centre with
        // coefficient 0.3; after fusion that coefficient is distributed over
        // the first equation's terms, so the fused second output has more
        // terms than before.
        assert!(combos[1].terms.len() > before.terms.len());
    }

    #[test]
    fn jacobian_is_not_fused() {
        let ir = emit_stencil_ir(&Benchmark::Jacobian.tiny_program()).unwrap();
        let mut ctx = ir.ctx;
        StencilInlining.run(&mut ctx, ir.module).unwrap();
        assert_eq!(ctx.walk_named(ir.module, stencil::APPLY).len(), 1);
    }

    fn chain_program(
        equations: Vec<(&str, wse_frontends::ast::Expr)>,
        fields: &[&str],
    ) -> wse_frontends::ast::StencilProgram {
        use wse_frontends::ast::{Frontend, GridSpec, StencilEquation, StencilProgram};
        let program = StencilProgram {
            name: "chain".into(),
            frontend: Frontend::Csl,
            grid: GridSpec::new(3, 3, 4),
            fields: fields.iter().map(|f| f.to_string()).collect(),
            equations: equations
                .into_iter()
                .map(|(out, expr)| StencilEquation::new(out, expr))
                .collect(),
            timesteps: 2,
            source: String::new(),
        };
        program.validate().expect("valid test program");
        program
    }

    #[test]
    fn self_updating_producer_is_renamed_and_fused() {
        use wse_frontends::ast::Expr;
        let program = chain_program(
            vec![
                ("f0", Expr::at("f0", 0, 0, -1).scale(0.4)),
                ("f1", Expr::center("f0").scale(0.3)),
            ],
            &["f0", "f1"],
        );
        let ir = emit_stencil_ir(&program).unwrap();
        let mut ctx = ir.ctx;
        StencilInlining.run(&mut ctx, ir.module).unwrap();
        assert!(verify(&ctx, ir.module, &registry()).is_empty());
        // One fused apply plus the copy-back identity apply.
        let applies = ctx.walk_named(ir.module, stencil::APPLY);
        assert_eq!(applies.len(), 2, "fused pair + copy-back");
        assert_eq!(ctx.results(applies[0]).len(), 2, "fused apply keeps both outputs");
        // A third kernel argument (the double buffer) was appended, with
        // its name recorded in field_names and internal_fields.
        let entry = func::func_body(&ctx, ir.func).unwrap();
        assert_eq!(ctx.block_args(entry).len(), 3);
        let names: Vec<&str> = ctx
            .attr(ir.func, "field_names")
            .and_then(Attribute::as_array)
            .unwrap()
            .iter()
            .filter_map(|a| a.as_str())
            .collect();
        assert_eq!(names, vec!["f0", "f1", "f0__dbuf0"]);
        let internal: Vec<&str> = ctx
            .attr(ir.func, INTERNAL_FIELDS_ATTR)
            .and_then(Attribute::as_array)
            .unwrap()
            .iter()
            .filter_map(|a| a.as_str())
            .collect();
        assert_eq!(internal, vec!["f0__dbuf0"]);
        // The fused apply's stores: f0's generation goes to the double
        // buffer; the copy-back stores back into f0.
        let entry_args = ctx.block_args(entry).to_vec();
        let stores = ctx.walk_named(ir.module, stencil::STORE);
        let targets: Vec<ValueId> = stores.iter().map(|&s| ctx.operand(s, 1)).collect();
        assert!(targets.contains(&entry_args[2]), "renamed store writes the double buffer");
        assert_eq!(
            targets.iter().filter(|&&t| t == entry_args[0]).count(),
            1,
            "exactly the copy-back writes f0"
        );
    }

    #[test]
    fn copy_back_is_skipped_when_a_later_store_exists() {
        use wse_frontends::ast::Expr;
        let program = chain_program(
            vec![
                ("f0", Expr::at("f0", 0, 0, -1).scale(0.4)),
                ("f1", Expr::center("f0").scale(0.3)),
                ("f0", Expr::at("f1", 0, 0, 1).scale(0.2)),
            ],
            &["f0", "f1"],
        );
        let ir = emit_stencil_ir(&program).unwrap();
        let mut ctx = ir.ctx;
        StencilInlining.run(&mut ctx, ir.module).unwrap();
        assert!(verify(&ctx, ir.module, &registry()).is_empty());
        // Fused pair + the overwriting equation; no copy-back apply.
        assert_eq!(ctx.walk_named(ir.module, stencil::APPLY).len(), 2);
    }

    #[test]
    fn interleaved_reader_of_producer_output_is_refused() {
        use wse_frontends::ast::Expr;
        let program = chain_program(
            vec![
                ("f0", Expr::at("f1", 0, 0, -1).scale(0.4)),
                ("f1", Expr::at("f0", 1, 0, 0).scale(0.5)),
                ("f2", Expr::center("f0").scale(0.3)),
            ],
            &["f0", "f1", "f2"],
        );
        let ir = emit_stencil_ir(&program).unwrap();
        let mut ctx = ir.ctx;
        StencilInlining.run(&mut ctx, ir.module).unwrap();
        assert_eq!(ctx.walk_named(ir.module, stencil::APPLY).len(), 3, "nothing fused");
        assert!(ctx.attr(ir.func, INTERNAL_FIELDS_ATTR).is_none(), "nothing renamed");
    }

    #[test]
    fn arith_chains_become_varith() {
        let ir = emit_stencil_ir(&Benchmark::Jacobian.tiny_program()).unwrap();
        let mut ctx = ir.ctx;
        ConvertArithToVarith.run(&mut ctx, ir.module).unwrap();
        let varith_ops = ctx.walk_named(ir.module, varith::ADD);
        assert_eq!(varith_ops.len(), 1);
        // Six scaled accesses feed the single variadic add.
        assert_eq!(ctx.operands(varith_ops[0]).len(), 6);
        assert!(verify(&ctx, ir.module, &registry()).is_empty());
        // The original addf chain is gone.
        assert!(ctx.walk_named(ir.module, arith::ADDF).is_empty());
    }

    #[test]
    fn repeated_operands_become_multiplication() {
        use wse_dialects::builtin;
        let mut ctx = IrContext::new();
        let (module, body) = builtin::module(&mut ctx);
        let mut b = OpBuilder::at_end(&mut ctx, body);
        let x = arith::constant_f32(&mut b, 1.5, Type::f32());
        let y = arith::constant_f32(&mut b, 2.0, Type::f32());
        varith::add(&mut b, vec![x, x, x, y]);
        VarithFuseRepeatedOperands.run(&mut ctx, module).unwrap();
        let add = ctx.walk_named(module, varith::ADD)[0];
        assert_eq!(ctx.operands(add).len(), 2, "three x operands collapse to one");
        let mul = ctx.walk_named(module, arith::MULF);
        assert_eq!(mul.len(), 1);
        assert!(verify(&ctx, module, &registry()).is_empty());
    }

    #[test]
    fn analysis_agrees_before_and_after_varith() {
        // The varith conversion must not change the computed combination.
        let ir = emit_stencil_ir(&Benchmark::Diffusion.tiny_program()).unwrap();
        let mut ctx = ir.ctx;
        let apply = ctx.walk_named(ir.module, stencil::APPLY)[0];
        let before = analyze_apply(&ctx, apply).unwrap();
        ConvertArithToVarith.run(&mut ctx, ir.module).unwrap();
        VarithFuseRepeatedOperands.run(&mut ctx, ir.module).unwrap();
        let after = analyze_apply(&ctx, apply).unwrap();
        assert_eq!(before.len(), after.len());
        let eval = |combos: &[LinearCombination]| {
            combos[0].evaluate(&|input, offset| {
                (input as f32 + 1.0) * (offset[0] * 100 + offset[1] * 10 + offset[2]) as f32
            })
        };
        assert!((eval(&before) - eval(&after)).abs() < 1e-4);
    }
}
