//! Stencil- and arithmetic-level optimization passes (Section 5.7).
//!
//! * `stencil-inlining` merges consecutive `stencil.apply` operations into a
//!   single fused kernel (used by UVKBE).
//! * `convert-arith-to-varith` collapses chains of binary additions /
//!   multiplications into variadic `varith` operations.
//! * `varith-fuse-repeated-operands` replaces repeated additions of the same
//!   value by a multiplication (important for the Acoustic kernel).

use std::collections::HashMap;

use wse_dialects::{arith, stencil, varith};
use wse_ir::{IrContext, OpBuilder, OpId, OpSpec, Pass, PassError, PassResult, Type, ValueId};

use crate::analysis::{analyze_apply, LinearCombination, Term};

// --------------------------------------------------------------------------
// stencil-inlining
// --------------------------------------------------------------------------

/// Fuses consecutive `stencil.apply` operations where the first apply's
/// result feeds the second.
#[derive(Debug, Default, Clone, Copy)]
pub struct StencilInlining;

impl Pass for StencilInlining {
    fn name(&self) -> &str {
        "stencil-inlining"
    }

    fn run(&self, ctx: &mut IrContext, module: OpId) -> PassResult {
        loop {
            let Some((producer, consumer)) = find_fusable_pair(ctx, module) else {
                return Ok(());
            };
            fuse_applies(ctx, producer, consumer).map_err(|m| PassError::new(self.name(), m))?;
        }
    }
}

/// Finds a pair (producer, consumer) of applies in the same block where the
/// producer's results are only consumed by the consumer (and by stores).
fn find_fusable_pair(ctx: &IrContext, module: OpId) -> Option<(OpId, OpId)> {
    for producer in ctx.walk_named(module, stencil::APPLY) {
        for &result in ctx.results(producer) {
            let uses = ctx.uses_of(result);
            let consumers: Vec<OpId> = uses
                .iter()
                .map(|(op, _)| *op)
                .filter(|&op| ctx.op_name(op) == stencil::APPLY)
                .collect();
            if consumers.len() != 1 {
                continue;
            }
            let consumer = consumers[0];
            if consumer == producer {
                continue;
            }
            // Everything else must be a store (which the fused apply keeps
            // feeding) for the fusion to be semantics-preserving.
            let all_supported =
                uses.iter().all(|(op, _)| *op == consumer || ctx.op_name(*op) == stencil::STORE);
            if all_supported
                && ctx.parent_block(producer) == ctx.parent_block(consumer)
                && fusion_is_safe(ctx, producer, consumer)
            {
                return Some((producer, consumer));
            }
        }
    }
    None
}

/// Whether inlining `producer` into `consumer` preserves semantics under
/// the actor lowering, which splits a fused multi-output apply back into
/// *sequential* kernels re-reading live field buffers.
///
/// Substituting the producer's expression into the consumer freezes it in
/// terms of the producer's *input* values — but by the time the
/// consumer's kernel runs, the producer's kernel has already written its
/// output field.  Fusion is therefore unsafe when a field written by any
/// producer result also backs one of the producer's operands (a
/// self-updating stencil, e.g. `f = 0.2 * f[z-1]` followed by a read of
/// `f`).  It is also unsafe when another apply sits between the pair,
/// because fusion moves the producer (and its stores) down to the
/// consumer's position, reordering them around that middle apply.
fn fusion_is_safe(ctx: &IrContext, producer: OpId, consumer: OpId) -> bool {
    // No other apply between producer and consumer in block order.
    if let (Some(block), Some(lo), Some(hi)) = (
        ctx.parent_block(producer),
        ctx.op_index_in_block(producer),
        ctx.op_index_in_block(consumer),
    ) {
        let between = &ctx.block_ops(block)[lo + 1..hi];
        if between.iter().any(|&op| ctx.op_name(op) == stencil::APPLY) {
            return false;
        }
    }
    // No producer store target may back a producer operand.
    let targets: Vec<ValueId> = ctx
        .results(producer)
        .iter()
        .flat_map(|&r| ctx.uses_of(r))
        .filter(|(op, _)| ctx.op_name(*op) == stencil::STORE)
        .map(|(store, _)| ctx.operand(store, 1))
        .collect();
    !ctx.operands(producer)
        .iter()
        .any(|&operand| backing_field(ctx, operand).is_some_and(|field| targets.contains(&field)))
}

/// The `stencil.field` value backing an apply operand: the source of its
/// defining load, or (for a forwarded apply result) that result's store
/// target.
fn backing_field(ctx: &IrContext, value: ValueId) -> Option<ValueId> {
    let def = ctx.defining_op(value)?;
    match ctx.op_name(def) {
        name if name == stencil::LOAD => Some(ctx.operand(def, 0)),
        name if name == stencil::APPLY => ctx
            .uses_of(value)
            .into_iter()
            .find(|(op, idx)| ctx.op_name(*op) == stencil::STORE && *idx == 0)
            .map(|(store, _)| ctx.operand(store, 1)),
        _ => None,
    }
}

fn fuse_applies(ctx: &mut IrContext, producer: OpId, consumer: OpId) -> Result<(), String> {
    let producer_combos = analyze_apply(ctx, producer).map_err(|e| e.message)?;
    let consumer_combos = analyze_apply(ctx, consumer).map_err(|e| e.message)?;
    let producer_operands = ctx.operands(producer).to_vec();
    let consumer_operands = ctx.operands(consumer).to_vec();
    let producer_results = ctx.results(producer).to_vec();
    let consumer_results = ctx.results(consumer).to_vec();

    // Fused operand list: producer operands followed by the consumer
    // operands that are not producer results.
    let mut fused_operands = producer_operands.clone();
    let mut consumer_operand_map: HashMap<usize, OperandSource> = HashMap::new();
    for (idx, &operand) in consumer_operands.iter().enumerate() {
        if let Some(res_idx) = producer_results.iter().position(|&r| r == operand) {
            consumer_operand_map.insert(idx, OperandSource::ProducerResult(res_idx));
        } else if let Some(pos) = fused_operands.iter().position(|&o| o == operand) {
            consumer_operand_map.insert(idx, OperandSource::Operand(pos));
        } else {
            fused_operands.push(operand);
            consumer_operand_map.insert(idx, OperandSource::Operand(fused_operands.len() - 1));
        }
    }

    // Remap producer combos (their input indices are already positions in
    // `fused_operands` because producer operands come first).
    let mut fused_combos: Vec<LinearCombination> = producer_combos.clone();
    // Compose consumer combos.
    for combo in &consumer_combos {
        let mut terms: Vec<Term> = Vec::new();
        let mut constant = combo.constant;
        for term in &combo.terms {
            match consumer_operand_map.get(&term.input) {
                Some(OperandSource::Operand(pos)) => {
                    terms.push(Term { input: *pos, ..term.clone() });
                }
                Some(OperandSource::ProducerResult(res_idx)) => {
                    // Substitute the producer's combination, shifting its
                    // offsets by the consumer access offset and scaling
                    // both its terms and its additive constant by the
                    // consumer coefficient.
                    for inner in &producer_combos[*res_idx].terms {
                        let offset: Vec<i64> = inner
                            .offset
                            .iter()
                            .zip(term.offset.iter().chain(std::iter::repeat(&0)))
                            .map(|(a, b)| a + b)
                            .collect();
                        terms.push(Term {
                            input: inner.input,
                            offset,
                            coeff: inner.coeff * term.coeff,
                        });
                    }
                    constant += term.coeff * producer_combos[*res_idx].constant;
                }
                None => return Err("inconsistent consumer operand map".into()),
            }
        }
        fused_combos.push(LinearCombination { terms, constant }.simplified());
    }

    // Result types: producer results then consumer results.
    let mut result_types: Vec<Type> =
        producer_results.iter().map(|&r| ctx.value_type(r).clone()).collect();
    result_types.extend(consumer_results.iter().map(|&r| ctx.value_type(r).clone()));

    // Build the fused apply at the consumer's position.
    let mut b = OpBuilder::before(ctx, consumer);
    let (fused, body) = stencil::build_apply(&mut b, fused_operands, result_types);
    emit_combination_body(ctx, body, &fused_combos);

    // Rewire uses.
    let fused_results = ctx.results(fused).to_vec();
    for (i, &old) in producer_results.iter().enumerate() {
        ctx.replace_all_uses(old, fused_results[i]);
    }
    for (i, &old) in consumer_results.iter().enumerate() {
        ctx.replace_all_uses(old, fused_results[producer_results.len() + i]);
    }
    // Stores of producer results may sit before the fused apply; move them
    // after it to preserve dominance.
    let fused_index = ctx.op_index_in_block(fused).expect("fused apply is attached");
    let block = ctx.parent_block(fused).expect("fused apply is attached");
    let mut insert_at = fused_index + 1;
    for store in ctx.walk_named(ctx.parent_op(fused).unwrap_or(fused), stencil::STORE) {
        if ctx.parent_block(store) == Some(block) {
            let idx = ctx.op_index_in_block(store).unwrap_or(usize::MAX);
            if idx < fused_index && fused_results.contains(&ctx.operand(store, 0)) {
                ctx.detach_op(store);
                let new_fused_index = ctx.op_index_in_block(fused).expect("still attached");
                insert_at = insert_at.min(new_fused_index + 1);
                ctx.insert_op(block, new_fused_index + 1, store);
            }
        }
    }
    ctx.erase_op(consumer);
    ctx.erase_op(producer);
    Ok(())
}

#[derive(Debug, Clone, Copy)]
enum OperandSource {
    Operand(usize),
    ProducerResult(usize),
}

/// Emits the scalar body of a `stencil.apply` from linear combinations.
pub fn emit_combination_body(
    ctx: &mut IrContext,
    body: wse_ir::BlockId,
    combos: &[LinearCombination],
) {
    let args = ctx.block_args(body).to_vec();
    let mut results = Vec::new();
    let mut b = OpBuilder::at_end(ctx, body);
    for combo in combos {
        let mut acc: Option<ValueId> = None;
        for term in &combo.terms {
            let access = stencil::access(&mut b, args[term.input], &term.offset, Type::f32());
            let coeff = arith::constant_f32(&mut b, term.coeff, Type::f32());
            let scaled = arith::mulf(&mut b, access, coeff);
            acc = Some(match acc {
                Some(prev) => arith::addf(&mut b, prev, scaled),
                None => scaled,
            });
        }
        let mut value = acc.unwrap_or_else(|| arith::constant_f32(&mut b, 0.0, Type::f32()));
        if combo.constant != 0.0 {
            let c = arith::constant_f32(&mut b, combo.constant, Type::f32());
            value = arith::addf(&mut b, value, c);
        }
        results.push(value);
    }
    stencil::build_return(ctx, body, results);
}

// --------------------------------------------------------------------------
// convert-arith-to-varith
// --------------------------------------------------------------------------

/// Collapses trees of `arith.addf` / `arith.mulf` into variadic `varith`
/// operations.
#[derive(Debug, Default, Clone, Copy)]
pub struct ConvertArithToVarith;

impl Pass for ConvertArithToVarith {
    fn name(&self) -> &str {
        "convert-arith-to-varith"
    }

    fn run(&self, ctx: &mut IrContext, module: OpId) -> PassResult {
        for (arith_name, varith_name) in [(arith::ADDF, varith::ADD), (arith::MULF, varith::MUL)] {
            // Roots: ops of this kind whose result is not consumed by the
            // same kind of op.
            let candidates = ctx.walk_named(module, arith_name);
            for root in candidates {
                if !ctx.op_is_live(root) {
                    continue;
                }
                let result = ctx.result(root, 0);
                let used_by_same =
                    ctx.uses_of(result).iter().any(|(op, _)| ctx.op_name(*op) == arith_name);
                if used_by_same {
                    continue;
                }
                let mut leaves = Vec::new();
                let mut to_erase = Vec::new();
                collect_leaves(ctx, root, arith_name, &mut leaves, &mut to_erase);
                if leaves.len() < 3 {
                    continue;
                }
                let ty = ctx.value_type(result).clone();
                let mut b = OpBuilder::before(ctx, root);
                let fused =
                    b.insert_value(OpSpec::new(varith_name).operands(leaves.clone()).results([ty]));
                ctx.replace_all_uses(result, fused);
                for op in to_erase {
                    if ctx.op_is_live(op) && !ctx.results(op).iter().any(|&r| ctx.has_uses(r)) {
                        ctx.erase_op(op);
                    }
                }
            }
        }
        Ok(())
    }
}

fn collect_leaves(
    ctx: &IrContext,
    op: OpId,
    kind: &str,
    leaves: &mut Vec<ValueId>,
    to_erase: &mut Vec<OpId>,
) {
    to_erase.push(op);
    for &operand in ctx.operands(op) {
        let nested = ctx
            .defining_op(operand)
            .filter(|&d| ctx.op_name(d) == kind && ctx.uses_of(ctx.result(d, 0)).len() == 1);
        match nested {
            Some(inner) => collect_leaves(ctx, inner, kind, leaves, to_erase),
            None => leaves.push(operand),
        }
    }
}

// --------------------------------------------------------------------------
// varith-fuse-repeated-operands
// --------------------------------------------------------------------------

/// Replaces repeated operands of a `varith.add` by a single multiplication
/// (`x + x + x` becomes `3 * x`).
#[derive(Debug, Default, Clone, Copy)]
pub struct VarithFuseRepeatedOperands;

impl Pass for VarithFuseRepeatedOperands {
    fn name(&self) -> &str {
        "varith-fuse-repeated-operands"
    }

    fn run(&self, ctx: &mut IrContext, module: OpId) -> PassResult {
        for op in ctx.walk_named(module, varith::ADD) {
            if !ctx.op_is_live(op) {
                continue;
            }
            let operands = ctx.operands(op).to_vec();
            let mut counts: Vec<(ValueId, usize)> = Vec::new();
            for &operand in &operands {
                if let Some(entry) = counts.iter_mut().find(|(v, _)| *v == operand) {
                    entry.1 += 1;
                } else {
                    counts.push((operand, 1));
                }
            }
            if counts.iter().all(|(_, c)| *c == 1) {
                continue;
            }
            let mut new_operands = Vec::new();
            let mut b = OpBuilder::before(ctx, op);
            for (value, count) in counts {
                if count == 1 {
                    new_operands.push(value);
                } else {
                    let ty = b.ctx_ref().value_type(value).clone();
                    let factor = arith::constant_f32(&mut b, count as f32, ty);
                    let scaled = arith::mulf(&mut b, value, factor);
                    new_operands.push(scaled);
                }
            }
            ctx.set_operands(op, new_operands);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wse_frontends::{benchmarks::Benchmark, emit_stencil_ir};
    use wse_ir::verify;

    fn registry() -> wse_ir::DialectRegistry {
        wse_csl::register_all()
    }

    #[test]
    fn uvkbe_applies_are_fused() {
        let ir = emit_stencil_ir(&Benchmark::Uvkbe.tiny_program()).unwrap();
        let mut ctx = ir.ctx;
        assert_eq!(ctx.walk_named(ir.module, stencil::APPLY).len(), 2);
        StencilInlining.run(&mut ctx, ir.module).unwrap();
        let applies = ctx.walk_named(ir.module, stencil::APPLY);
        assert_eq!(applies.len(), 1, "consecutive applies must be fused into one");
        assert_eq!(ctx.results(applies[0]).len(), 2, "fused apply keeps both outputs");
        assert!(verify(&ctx, ir.module, &registry()).is_empty());
        // Both stores remain and now consume the fused apply's results.
        let stores = ctx.walk_named(ir.module, stencil::STORE);
        assert_eq!(stores.len(), 2);
        for store in stores {
            assert_eq!(ctx.defining_op(ctx.operand(store, 0)), Some(applies[0]));
        }
    }

    #[test]
    fn fused_combination_composes_coefficients() {
        let ir = emit_stencil_ir(&Benchmark::Uvkbe.tiny_program()).unwrap();
        let mut ctx = ir.ctx;
        // Reference semantics of the second equation before fusion.
        let before =
            analyze_apply(&ctx, ctx.walk_named(ir.module, stencil::APPLY)[1]).unwrap()[0].clone();
        StencilInlining.run(&mut ctx, ir.module).unwrap();
        let fused = ctx.walk_named(ir.module, stencil::APPLY)[0];
        let combos = analyze_apply(&ctx, fused).unwrap();
        assert_eq!(combos.len(), 2);
        // The second output previously read the first output's centre with
        // coefficient 0.3; after fusion that coefficient is distributed over
        // the first equation's terms, so the fused second output has more
        // terms than before.
        assert!(combos[1].terms.len() > before.terms.len());
    }

    #[test]
    fn jacobian_is_not_fused() {
        let ir = emit_stencil_ir(&Benchmark::Jacobian.tiny_program()).unwrap();
        let mut ctx = ir.ctx;
        StencilInlining.run(&mut ctx, ir.module).unwrap();
        assert_eq!(ctx.walk_named(ir.module, stencil::APPLY).len(), 1);
    }

    #[test]
    fn arith_chains_become_varith() {
        let ir = emit_stencil_ir(&Benchmark::Jacobian.tiny_program()).unwrap();
        let mut ctx = ir.ctx;
        ConvertArithToVarith.run(&mut ctx, ir.module).unwrap();
        let varith_ops = ctx.walk_named(ir.module, varith::ADD);
        assert_eq!(varith_ops.len(), 1);
        // Six scaled accesses feed the single variadic add.
        assert_eq!(ctx.operands(varith_ops[0]).len(), 6);
        assert!(verify(&ctx, ir.module, &registry()).is_empty());
        // The original addf chain is gone.
        assert!(ctx.walk_named(ir.module, arith::ADDF).is_empty());
    }

    #[test]
    fn repeated_operands_become_multiplication() {
        use wse_dialects::builtin;
        let mut ctx = IrContext::new();
        let (module, body) = builtin::module(&mut ctx);
        let mut b = OpBuilder::at_end(&mut ctx, body);
        let x = arith::constant_f32(&mut b, 1.5, Type::f32());
        let y = arith::constant_f32(&mut b, 2.0, Type::f32());
        varith::add(&mut b, vec![x, x, x, y]);
        VarithFuseRepeatedOperands.run(&mut ctx, module).unwrap();
        let add = ctx.walk_named(module, varith::ADD)[0];
        assert_eq!(ctx.operands(add).len(), 2, "three x operands collapse to one");
        let mul = ctx.walk_named(module, arith::MULF);
        assert_eq!(mul.len(), 1);
        assert!(verify(&ctx, module, &registry()).is_empty());
    }

    #[test]
    fn analysis_agrees_before_and_after_varith() {
        // The varith conversion must not change the computed combination.
        let ir = emit_stencil_ir(&Benchmark::Diffusion.tiny_program()).unwrap();
        let mut ctx = ir.ctx;
        let apply = ctx.walk_named(ir.module, stencil::APPLY)[0];
        let before = analyze_apply(&ctx, apply).unwrap();
        ConvertArithToVarith.run(&mut ctx, ir.module).unwrap();
        VarithFuseRepeatedOperands.run(&mut ctx, ir.module).unwrap();
        let after = analyze_apply(&ctx, apply).unwrap();
        assert_eq!(before.len(), after.len());
        let eval = |combos: &[LinearCombination]| {
            combos[0].evaluate(&|input, offset| {
                (input as f32 + 1.0) * (offset[0] * 100 + offset[1] * 10 + offset[2]) as f32
            })
        };
        assert!((eval(&before) - eval(&after)).abs() < 1e-4);
    }
}
