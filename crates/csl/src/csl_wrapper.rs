//! The `csl_wrapper` dialect: staged-compilation packaging.
//!
//! CSL programs consist of a *layout* metaprogram (placement, routing and
//! compile-time parameters) and one or more *PE programs*.
//! `csl_wrapper.module` packages both together: its first region holds the
//! layout description, its second region the program that is mapped onto
//! every PE (Section 4.2 of the paper).

use wse_ir::{Attribute, BlockId, DialectRegistry, IrContext, OpBuilder, OpId, OpSpec, ValueId};

/// `csl_wrapper.module`: packages layout and program regions plus params.
pub const MODULE: &str = "csl_wrapper.module";
/// `csl_wrapper.import`: imports a CSL library (e.g. the memcpy library).
pub const IMPORT: &str = "csl_wrapper.import";
/// `csl_wrapper.yield`: terminator for wrapper regions.
pub const YIELD: &str = "csl_wrapper.yield";

/// Program-wide parameters carried by the wrapper module.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WrapperParams {
    /// PE-grid extent in x.
    pub width: i64,
    /// PE-grid extent in y.
    pub height: i64,
    /// Length of the per-PE column (z extent).
    pub z_dim: i64,
    /// Stencil pattern radius (1 for a star-1 stencil, 2 for 25-point, ...).
    pub pattern: i64,
    /// Number of chunks per halo exchange.
    pub num_chunks: i64,
    /// Chunk size in elements.
    pub chunk_size: i64,
    /// Number of fields communicated per timestep.
    pub fields: i64,
}

impl WrapperParams {
    /// Encodes the parameters as attributes on the module op.
    fn apply_to(&self, spec: OpSpec) -> OpSpec {
        spec.attr("width", Attribute::int(self.width))
            .attr("height", Attribute::int(self.height))
            .attr("z_dim", Attribute::int(self.z_dim))
            .attr("pattern", Attribute::int(self.pattern))
            .attr("num_chunks", Attribute::int(self.num_chunks))
            .attr("chunk_size", Attribute::int(self.chunk_size))
            .attr("fields", Attribute::int(self.fields))
    }

    /// Decodes the parameters from a wrapper module op.
    pub fn from_op(ctx: &IrContext, op: OpId) -> Option<WrapperParams> {
        Some(WrapperParams {
            width: ctx.attr_int(op, "width")?,
            height: ctx.attr_int(op, "height")?,
            z_dim: ctx.attr_int(op, "z_dim")?,
            pattern: ctx.attr_int(op, "pattern")?,
            num_chunks: ctx.attr_int(op, "num_chunks")?,
            chunk_size: ctx.attr_int(op, "chunk_size")?,
            fields: ctx.attr_int(op, "fields")?,
        })
    }
}

/// Builds a `csl_wrapper.module` with empty layout and program blocks.
///
/// Returns `(op, layout_block, program_block)`.
pub fn build_module(
    b: &mut OpBuilder<'_>,
    name: &str,
    params: &WrapperParams,
) -> (OpId, BlockId, BlockId) {
    let spec =
        params.apply_to(OpSpec::new(MODULE).attr("sym_name", Attribute::str(name))).regions(2);
    let op = b.insert(spec);
    let layout_region = b.ctx_ref().op_region(op, 0);
    let layout = b.ctx().add_block(layout_region, vec![]);
    let program_region = b.ctx_ref().op_region(op, 1);
    let program = b.ctx().add_block(program_region, vec![]);
    (op, layout, program)
}

/// Builds a `csl_wrapper.import` of the named CSL library.
pub fn import(b: &mut OpBuilder<'_>, module_name: &str, fields: &[&str]) -> OpId {
    b.insert(
        OpSpec::new(IMPORT)
            .attr("module", Attribute::str(module_name))
            .attr("fields", Attribute::Array(fields.iter().map(|f| Attribute::str(*f)).collect())),
    )
}

/// Appends a `csl_wrapper.yield`.
pub fn build_yield(ctx: &mut IrContext, block: BlockId, values: Vec<ValueId>) -> OpId {
    let mut b = OpBuilder::at_end(ctx, block);
    b.insert(OpSpec::new(YIELD).operands(values))
}

/// The layout block of a wrapper module.
pub fn layout_block(ctx: &IrContext, op: OpId) -> Option<BlockId> {
    ctx.entry_block(ctx.op_region(op, 0))
}

/// The program block of a wrapper module.
pub fn program_block(ctx: &IrContext, op: OpId) -> Option<BlockId> {
    ctx.entry_block(ctx.op_region(op, 1))
}

/// Finds the first wrapper module nested under `root`.
pub fn find_wrapper(ctx: &IrContext, root: OpId) -> Option<OpId> {
    ctx.walk_named(root, MODULE).into_iter().next()
}

fn verify_module(ctx: &IrContext, op: OpId) -> Result<(), String> {
    if ctx.op_regions(op).len() != 2 {
        return Err("csl_wrapper.module requires layout and program regions".into());
    }
    let params = WrapperParams::from_op(ctx, op)
        .ok_or("csl_wrapper.module requires width/height/z_dim/pattern/num_chunks/chunk_size/fields attributes")?;
    if params.width <= 0 || params.height <= 0 {
        return Err("csl_wrapper.module width/height must be positive".into());
    }
    if params.z_dim <= 0 {
        return Err("csl_wrapper.module z_dim must be positive".into());
    }
    if params.num_chunks <= 0 || params.chunk_size <= 0 {
        return Err("csl_wrapper.module chunking parameters must be positive".into());
    }
    if params.pattern < 1 {
        return Err("csl_wrapper.module pattern (stencil radius) must be >= 1".into());
    }
    Ok(())
}

fn verify_import(ctx: &IrContext, op: OpId) -> Result<(), String> {
    if ctx.attr_str(op, "module").is_none() {
        return Err("csl_wrapper.import requires a module attribute".into());
    }
    Ok(())
}

/// Registers the dialect's verifiers.
pub fn register(registry: &mut DialectRegistry) {
    registry.register_dialect("csl_wrapper");
    registry.register_op_verifier(MODULE, verify_module);
    registry.register_op_verifier(IMPORT, verify_import);
}

#[cfg(test)]
mod tests {
    use super::*;
    use wse_dialects::builtin;
    use wse_ir::verify;

    fn params() -> WrapperParams {
        WrapperParams {
            width: 750,
            height: 994,
            z_dim: 450,
            pattern: 2,
            num_chunks: 1,
            chunk_size: 450,
            fields: 1,
        }
    }

    #[test]
    fn wrapper_module_roundtrip() {
        let mut ctx = IrContext::new();
        let (module, body) = builtin::module(&mut ctx);
        let mut b = OpBuilder::at_end(&mut ctx, body);
        let (wrapper, layout, program) = build_module(&mut b, "seismic", &params());
        let mut lb = OpBuilder::at_end(&mut ctx, layout);
        import(&mut lb, "<memcpy/get_params>", &["width", "height"]);
        build_yield(&mut ctx, layout, vec![]);
        build_yield(&mut ctx, program, vec![]);

        assert_eq!(WrapperParams::from_op(&ctx, wrapper), Some(params()));
        assert_eq!(layout_block(&ctx, wrapper), Some(layout));
        assert_eq!(program_block(&ctx, wrapper), Some(program));
        assert_eq!(find_wrapper(&ctx, module), Some(wrapper));

        let mut registry = wse_dialects::register_all();
        register(&mut registry);
        assert!(verify(&ctx, module, &registry).is_empty());
    }

    #[test]
    fn invalid_params_rejected() {
        let mut ctx = IrContext::new();
        let (module, body) = builtin::module(&mut ctx);
        let mut bad = params();
        bad.z_dim = 0;
        let mut b = OpBuilder::at_end(&mut ctx, body);
        build_module(&mut b, "bad", &bad);
        let mut registry = wse_dialects::register_all();
        register(&mut registry);
        let errors = verify(&ctx, module, &registry);
        assert!(errors.iter().any(|e| e.message.contains("z_dim")));
    }

    #[test]
    fn import_requires_module_name() {
        let mut ctx = IrContext::new();
        let (module, body) = builtin::module(&mut ctx);
        let mut b = OpBuilder::at_end(&mut ctx, body);
        b.insert(OpSpec::new(IMPORT));
        let mut registry = wse_dialects::register_all();
        register(&mut registry);
        let errors = verify(&ctx, module, &registry);
        assert!(errors.iter().any(|e| e.message.contains("module attribute")));
    }
}
