//! The `csl_stencil` dialect: WSE-specific stencil communication+compute.
//!
//! `csl_stencil.apply` (Listing 4 of the paper) combines the halo exchange
//! and the stencil computation.  It has two regions:
//!
//! 1. the *receive-chunk* region, executed once per incoming chunk of
//!    remote data, which partially reduces the chunk into an accumulator;
//! 2. the *done-exchange* region, executed once after all chunks from all
//!    neighbors have arrived, which combines the accumulator with locally
//!    held data.

use wse_dialects::dmp::Exchange;
use wse_dialects::stencil;
use wse_ir::{
    Attribute, BlockId, DialectRegistry, IrContext, OpBuilder, OpId, OpSpec, Type, ValueId,
};

/// `csl_stencil.prefetch`: fetches remote halo data into a local buffer.
pub const PREFETCH: &str = "csl_stencil.prefetch";
/// `csl_stencil.apply`: chunked communicate-and-compute (two regions).
pub const APPLY: &str = "csl_stencil.apply";
/// `csl_stencil.access`: neighbor access (local memory or receive buffer).
pub const ACCESS: &str = "csl_stencil.access";
/// `csl_stencil.yield`: terminator of both apply regions.
pub const YIELD: &str = "csl_stencil.yield";

/// Encodes a list of exchanges into the `swaps` attribute.
pub fn swaps_attr(exchanges: &[Exchange]) -> Attribute {
    Attribute::Array(exchanges.iter().map(Exchange::to_attr).collect())
}

/// Decodes the `swaps` attribute of an op.
pub fn swaps_of(ctx: &IrContext, op: OpId) -> Vec<Exchange> {
    ctx.attr(op, "swaps")
        .and_then(Attribute::as_array)
        .map(|attrs| attrs.iter().filter_map(Exchange::from_attr).collect())
        .unwrap_or_default()
}

/// Builds a `csl_stencil.prefetch` of `input`, producing a receive buffer
/// of type `tensor<num_neighbors x chunk_z x f32>`.
pub fn prefetch(
    b: &mut OpBuilder<'_>,
    input: ValueId,
    exchanges: &[Exchange],
    num_chunks: i64,
    buffer_type: Type,
) -> ValueId {
    b.insert_value(
        OpSpec::new(PREFETCH)
            .operands([input])
            .results([buffer_type])
            .attr("swaps", swaps_attr(exchanges))
            .attr("num_chunks", Attribute::int(num_chunks)),
    )
}

/// Configuration of a `csl_stencil.apply`.
#[derive(Debug, Clone)]
pub struct ApplyConfig {
    /// The halo exchanges performed by this apply.
    pub exchanges: Vec<Exchange>,
    /// Number of chunks each neighbor's column is split into.
    pub num_chunks: i64,
    /// Extent of the z (tensorized) dimension processed per cell.
    pub z_extent: i64,
}

/// Builds a `csl_stencil.apply`.
///
/// * `inputs` are the local columns (each a
///   `!stencil.temp<... x tensor<z x f32>>`),
/// * `acc_init` is the initial accumulator value (a `tensor<z x f32>`),
/// * region 0 (receive-chunk) gets arguments `(chunk_buffer, offset, acc)`,
/// * region 1 (done-exchange) gets arguments `(inputs..., acc)`,
/// * the result types are the stencil temps produced by the apply.
///
/// Returns `(op, receive_chunk_block, done_exchange_block)`.
pub fn build_apply(
    b: &mut OpBuilder<'_>,
    inputs: Vec<ValueId>,
    acc_init: ValueId,
    config: &ApplyConfig,
    chunk_buffer_type: Type,
    result_types: Vec<Type>,
) -> (OpId, BlockId, BlockId) {
    let input_tys: Vec<Type> = inputs.iter().map(|&v| b.ctx_ref().value_type(v).clone()).collect();
    let acc_ty = b.ctx_ref().value_type(acc_init).clone();
    let mut operands = inputs;
    operands.push(acc_init);
    let op = b.insert(
        OpSpec::new(APPLY)
            .operands(operands)
            .results(result_types)
            .regions(2)
            .attr("swaps", swaps_attr(&config.exchanges))
            .attr("num_chunks", Attribute::int(config.num_chunks))
            .attr("z_extent", Attribute::int(config.z_extent)),
    );
    let recv_region = b.ctx_ref().op_region(op, 0);
    let recv_block =
        b.ctx().add_block(recv_region, vec![chunk_buffer_type, Type::index(), acc_ty.clone()]);
    let done_region = b.ctx_ref().op_region(op, 1);
    let mut done_args = input_tys;
    done_args.push(acc_ty);
    let done_block = b.ctx().add_block(done_region, done_args);
    (op, recv_block, done_block)
}

/// Builds a `csl_stencil.access` at `offset`.
pub fn access(b: &mut OpBuilder<'_>, source: ValueId, offset: &[i64], result: Type) -> ValueId {
    b.insert_value(
        OpSpec::new(ACCESS)
            .operands([source])
            .results([result])
            .attr("offset", Attribute::IndexArray(offset.to_vec())),
    )
}

/// Appends a `csl_stencil.yield` to a region block.
pub fn build_yield(ctx: &mut IrContext, block: BlockId, values: Vec<ValueId>) -> OpId {
    let mut b = OpBuilder::at_end(ctx, block);
    b.insert(OpSpec::new(YIELD).operands(values))
}

/// The offset of a `csl_stencil.access`.
pub fn access_offset(ctx: &IrContext, op: OpId) -> Option<Vec<i64>> {
    ctx.attr(op, "offset")?.as_index_array().map(<[i64]>::to_vec)
}

/// The `num_chunks` attribute of an apply or prefetch.
pub fn num_chunks(ctx: &IrContext, op: OpId) -> i64 {
    ctx.attr_int(op, "num_chunks").unwrap_or(1)
}

/// The receive-chunk block (region 0) of an apply.
pub fn receive_chunk_block(ctx: &IrContext, op: OpId) -> Option<BlockId> {
    ctx.entry_block(ctx.op_region(op, 0))
}

/// The done-exchange block (region 1) of an apply.
pub fn done_exchange_block(ctx: &IrContext, op: OpId) -> Option<BlockId> {
    ctx.entry_block(ctx.op_region(op, 1))
}

fn verify_apply(ctx: &IrContext, op: OpId) -> Result<(), String> {
    if ctx.op_regions(op).len() != 2 {
        return Err("csl_stencil.apply requires exactly two regions".into());
    }
    if ctx.operands(op).len() < 2 {
        return Err("csl_stencil.apply requires input and accumulator operands".into());
    }
    let chunks = num_chunks(ctx, op);
    if chunks < 1 {
        return Err(format!("num_chunks must be >= 1, found {chunks}"));
    }
    let z = ctx.attr_int(op, "z_extent").unwrap_or(0);
    if z > 0 && chunks > 0 && z % chunks != 0 {
        return Err(format!("z extent {z} must be divisible by num_chunks {chunks}"));
    }
    let recv = receive_chunk_block(ctx, op).ok_or("missing receive-chunk block")?;
    if ctx.block_args(recv).len() != 3 {
        return Err("receive-chunk region must have (buffer, offset, acc) arguments".into());
    }
    let done = done_exchange_block(ctx, op).ok_or("missing done-exchange block")?;
    if ctx.block_args(done).len() != ctx.operands(op).len() {
        return Err("done-exchange region must have (inputs..., acc) arguments".into());
    }
    for block in [recv, done] {
        match ctx.block_ops(block).last() {
            Some(&last) if ctx.op_name(last) == YIELD => {}
            _ => {
                return Err("both csl_stencil.apply regions must end with csl_stencil.yield".into())
            }
        }
    }
    let swaps = swaps_of(ctx, op);
    if swaps.is_empty() {
        return Err("csl_stencil.apply requires a non-empty swaps attribute".into());
    }
    Ok(())
}

fn verify_access(ctx: &IrContext, op: OpId) -> Result<(), String> {
    if ctx.operands(op).len() != 1 {
        return Err("csl_stencil.access requires exactly one operand".into());
    }
    if access_offset(ctx, op).is_none() {
        return Err("csl_stencil.access requires an offset attribute".into());
    }
    Ok(())
}

fn verify_prefetch(ctx: &IrContext, op: OpId) -> Result<(), String> {
    if ctx.operands(op).len() != 1 || ctx.results(op).len() != 1 {
        return Err("csl_stencil.prefetch requires one operand and one result".into());
    }
    if swaps_of(ctx, op).is_empty() {
        return Err("csl_stencil.prefetch requires a non-empty swaps attribute".into());
    }
    Ok(())
}

/// Registers the dialect's verifiers.
pub fn register(registry: &mut DialectRegistry) {
    registry.register_dialect("csl_stencil");
    registry.register_op_verifier(APPLY, verify_apply);
    registry.register_op_verifier(ACCESS, verify_access);
    registry.register_op_verifier(PREFETCH, verify_prefetch);
}

/// Helper producing the iteration bounds of the apply results: all results
/// share the bounds of the first result temp.
pub fn result_bounds(ctx: &IrContext, op: OpId) -> Option<stencil::Bounds> {
    ctx.results(op).first().and_then(|&r| stencil::type_bounds(ctx.value_type(r)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use wse_dialects::{arith, builtin, tensor};
    use wse_ir::verify;

    fn registry() -> DialectRegistry {
        let mut r = wse_dialects::register_all();
        register(&mut r);
        r
    }

    /// Builds the paper's Listing 4: a two-chunk apply whose receive-chunk
    /// region packs incoming data into the accumulator and whose
    /// done-exchange region adds local data and scales by a constant.
    fn build_listing4(ctx: &mut IrContext) -> OpId {
        let (_module, body) = builtin::module(ctx);
        let z = 510;
        let bounds = stencil::Bounds::new(vec![-1, -1], vec![2, 2]);
        let temp_ty = stencil::temp_type(&bounds, Type::tensor(vec![z], Type::f32()));
        let acc_ty = Type::tensor(vec![z], Type::f32());
        let chunk_ty = Type::tensor(vec![4, z / 2], Type::f32());

        let mut b = OpBuilder::at_end(ctx, body);
        let input = b.insert_value(OpSpec::new("tensor.empty").results([temp_ty.clone()]));
        let acc = arith::constant_f32(&mut b, 0.0, acc_ty.clone());
        let config = ApplyConfig {
            exchanges: vec![
                Exchange::new(1, 0, 1),
                Exchange::new(-1, 0, 1),
                Exchange::new(0, 1, 1),
                Exchange::new(0, -1, 1),
            ],
            num_chunks: 2,
            z_extent: z,
        };
        let (apply, recv, done) =
            build_apply(&mut b, vec![input], acc, &config, chunk_ty, vec![temp_ty]);

        // Receive-chunk region: reduce the east neighbor's chunk into acc.
        let recv_args = ctx.block_args(recv).to_vec();
        let mut rb = OpBuilder::at_end(ctx, recv);
        let east = access(&mut rb, recv_args[0], &[1, 0], Type::tensor(vec![z / 2], Type::f32()));
        let packed = tensor::insert_slice(&mut rb, east, recv_args[2], recv_args[1], z / 2);
        build_yield(ctx, recv, vec![packed]);

        // Done-exchange region: add the local value and scale.
        let done_args = ctx.block_args(done).to_vec();
        let mut db = OpBuilder::at_end(ctx, done);
        let c = arith::constant_f32(&mut db, 0.12345, acc_ty.clone());
        let local = access(&mut db, done_args[0], &[0, 0], acc_ty.clone());
        let sum = arith::addf(&mut db, done_args[1], local);
        let scaled = arith::mulf(&mut db, sum, c);
        build_yield(ctx, done, vec![scaled]);
        apply
    }

    #[test]
    fn listing4_builds_and_verifies() {
        let mut ctx = IrContext::new();
        let apply = build_listing4(&mut ctx);
        let module = ctx.ancestor_of_name(apply, builtin::MODULE).unwrap();
        let errors = verify(&ctx, module, &registry());
        assert!(errors.is_empty(), "unexpected errors: {errors:?}");
        assert_eq!(num_chunks(&ctx, apply), 2);
        assert_eq!(swaps_of(&ctx, apply).len(), 4);
        assert!(receive_chunk_block(&ctx, apply).is_some());
        assert!(done_exchange_block(&ctx, apply).is_some());
        assert_eq!(
            result_bounds(&ctx, apply),
            Some(stencil::Bounds::new(vec![-1, -1], vec![2, 2]))
        );
    }

    #[test]
    fn indivisible_chunking_rejected() {
        let mut ctx = IrContext::new();
        let apply = build_listing4(&mut ctx);
        ctx.set_attr(apply, "num_chunks", Attribute::int(4));
        ctx.set_attr(apply, "z_extent", Attribute::int(510)); // 510 % 4 != 0
        let module = ctx.ancestor_of_name(apply, builtin::MODULE).unwrap();
        let errors = verify(&ctx, module, &registry());
        assert!(errors.iter().any(|e| e.message.contains("divisible")));
    }

    #[test]
    fn empty_swaps_rejected() {
        let mut ctx = IrContext::new();
        let apply = build_listing4(&mut ctx);
        ctx.set_attr(apply, "swaps", Attribute::Array(vec![]));
        let module = ctx.ancestor_of_name(apply, builtin::MODULE).unwrap();
        let errors = verify(&ctx, module, &registry());
        assert!(errors.iter().any(|e| e.message.contains("non-empty swaps")));
    }

    #[test]
    fn prefetch_builds() {
        let mut ctx = IrContext::new();
        let (module, body) = builtin::module(&mut ctx);
        let mut b = OpBuilder::at_end(&mut ctx, body);
        let t = b.insert_value(
            OpSpec::new("tensor.empty").results([Type::tensor(vec![512], Type::f32())]),
        );
        let buf = prefetch(
            &mut b,
            t,
            &[Exchange::new(1, 0, 1)],
            2,
            Type::tensor(vec![4, 256], Type::f32()),
        );
        let op = ctx.defining_op(buf).unwrap();
        assert_eq!(num_chunks(&ctx, op), 2);
        assert!(verify(&ctx, module, &registry()).is_empty());
    }
}
