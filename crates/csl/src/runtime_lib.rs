//! The runtime communications library (Section 5.6 of the paper).
//!
//! Data exchanges between PEs are handled by a CSL library implementing the
//! partitionable communication strategy of Jacquelin et al. for star-shaped
//! stencils of up to three dimensions at variable stencil sizes.  The
//! library encapsulates the boiler-plate for sending and receiving data in
//! chunks of configurable size: it schedules asynchronous sends and
//! receives in all four directions, uses multiple internal tasks per
//! direction to handle completion of the asynchronous steps and the
//! updating of routing patterns, and finally triggers the user-provided
//! callbacks (`receive_chunk_cb`, `done_exchange_cb`).
//!
//! The text returned by [`stencil_comms_library`] is the CSL source of this
//! library as emitted alongside every generated kernel; the executable
//! model used by the simulator lives in `wse-sim::comms`.

/// Architectural knobs that the generated layout metaprogram specializes
/// the library with at CSL compile time (`comptime`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommsLibraryConfig {
    /// Stencil pattern radius (1 = star-1 / 6-point 3D, 2 = 25-point, ...).
    pub pattern: i64,
    /// Number of chunks each column exchange is split into.
    pub num_chunks: i64,
    /// Chunk size in 32-bit elements.
    pub chunk_size: i64,
    /// Whether the target requires the WSE2 self-transmit workaround.
    pub wse2_self_transmit: bool,
}

impl Default for CommsLibraryConfig {
    fn default() -> Self {
        Self { pattern: 1, num_chunks: 1, chunk_size: 512, wse2_self_transmit: false }
    }
}

const DIRECTIONS: &[(&str, &str, &str)] = &[
    ("east", "EAST", "RAMP"),
    ("west", "WEST", "RAMP"),
    ("north", "NORTH", "RAMP"),
    ("south", "SOUTH", "RAMP"),
];

/// Returns the CSL source text of the `stencil_comms.csl` library.
pub fn stencil_comms_library() -> String {
    stencil_comms_library_with(CommsLibraryConfig::default())
}

/// Returns the CSL source text of the library specialized for `config`.
pub fn stencil_comms_library_with(config: CommsLibraryConfig) -> String {
    let mut out = String::with_capacity(32 * 1024);
    header(&mut out, config);
    state_declarations(&mut out, config);
    for (i, (dir, color, _ramp)) in DIRECTIONS.iter().enumerate() {
        direction_block(&mut out, config, i, dir, color);
    }
    coordination_block(&mut out, config);
    out
}

fn push(out: &mut String, line: &str) {
    out.push_str(line);
    out.push('\n');
}

fn header(out: &mut String, config: CommsLibraryConfig) {
    push(out, "// stencil_comms.csl");
    push(out, "// Chunked halo-exchange library for star-shaped stencils on the WSE.");
    push(out, "// Generated together with every kernel produced by the wse-stencil pipeline.");
    push(out, "//");
    push(out, "// The library schedules asynchronous sends and receives in the four");
    push(out, "// cardinal directions, splits each column exchange into `num_chunks`");
    push(out, "// pieces so that receive buffers fit in the 48 kB of PE-local memory,");
    push(out, "// reduces arriving chunks immediately through the user callback and");
    push(out, "// finally hands control back through the done callback.");
    push(out, "");
    push(out, "param pattern : i16;          // stencil radius (cells exchanged per direction)");
    push(out, "param num_chunks : i16;       // chunks per column exchange");
    push(out, "param chunk_size : i16;       // elements per chunk");
    push(out, "param fields : i16;           // fields communicated per time step");
    push(out, "param padded_z_dim : i16;     // chunk_size * num_chunks");
    push(out, &format!("const default_pattern : i16 = {};", config.pattern));
    push(out, &format!("const default_num_chunks : i16 = {};", config.num_chunks));
    push(out, &format!("const default_chunk_size : i16 = {};", config.chunk_size));
    push(out, "");
    push(out, "const directions = @import_module(\"<directions>\");");
    push(out, "const fabric = @import_module(\"<fabric>\");");
    push(out, "const timestamp = @import_module(\"<time>\");");
    push(out, "");
}

fn state_declarations(out: &mut String, config: CommsLibraryConfig) {
    push(out, "// ---------------------------------------------------------------------");
    push(out, "// Internal state");
    push(out, "// ---------------------------------------------------------------------");
    push(out, "");
    push(out, "var pending_directions : i16 = 0;");
    push(out, "var pending_chunks : i16 = 0;");
    push(out, "var current_chunk : i16 = 0;");
    push(out, "var exchange_in_flight : bool = false;");
    push(out, "var user_chunk_cb : fn(i16) void = undefined;");
    push(out, "var user_done_cb : fn() void = undefined;");
    push(out, "var send_buffer_ptr : [*]f32 = undefined;");
    push(out, "var send_count : i16 = 0;");
    push(out, "");
    push(out, "// Per-direction receive staging buffers. Each direction owns a buffer of");
    push(out, "// pattern * chunk_size elements so a full chunk from every neighbour can");
    push(out, "// be staged before the reduction callback consumes it.");
    for (dir, _, _) in DIRECTIONS {
        push(out, &format!("var recv_buffer_{dir} = @zeros([pattern * chunk_size]f32);"));
        push(out, &format!("var recv_count_{dir} : i16 = 0;"));
        push(out, &format!("var route_configured_{dir} : bool = false;"));
    }
    push(out, "");
    if config.wse2_self_transmit {
        push(out, "// WSE2 switch limitation: every PE must also transmit to itself on each");
        push(out, "// route (Jacquelin et al.); the extra queue below stages that copy.");
        push(out, "var self_transmit_buffer = @zeros([chunk_size]f32);");
        push(out, "var self_transmit_pending : bool = false;");
        push(out, "");
    }
}

fn direction_block(
    out: &mut String,
    config: CommsLibraryConfig,
    index: usize,
    dir: &str,
    color: &str,
) {
    let send_color = 2 * index;
    let recv_color = 2 * index + 1;
    push(out, "// ---------------------------------------------------------------------");
    push(out, &format!("// Direction: {dir}"));
    push(out, "// ---------------------------------------------------------------------");
    push(out, "");
    push(out, &format!("const send_color_{dir} : color = @get_color({send_color});"));
    push(out, &format!("const recv_color_{dir} : color = @get_color({recv_color});"));
    push(out, &format!("const send_queue_{dir} = @get_output_queue({send_color});"));
    push(out, &format!("const recv_queue_{dir} = @get_input_queue({recv_color});"));
    push(out, "");
    push(out, &format!("// Fabric DSD describing an outgoing chunk towards {dir}."));
    push(out, &format!("var send_dsd_{dir} = @get_dsd(fabout_dsd, .{{"));
    push(out, &format!("  .fabric_color = send_color_{dir},"));
    push(out, "  .extent = chunk_size,");
    push(out, &format!("  .output_queue = send_queue_{dir},"));
    push(out, "});");
    push(out, "");
    push(out, &format!("// Fabric DSD describing an incoming chunk from {dir}."));
    push(out, &format!("var recv_dsd_{dir} = @get_dsd(fabin_dsd, .{{"));
    push(out, &format!("  .fabric_color = recv_color_{dir},"));
    push(out, "  .extent = chunk_size,");
    push(out, &format!("  .input_queue = recv_queue_{dir},"));
    push(out, "});");
    push(out, "");
    push(out, &format!("// Memory DSD over the staging buffer for {dir}."));
    push(out, &format!("var recv_mem_dsd_{dir} = @get_dsd(mem1d_dsd, .{{"));
    push(out, &format!("  .tensor_access = |i|{{chunk_size}} -> recv_buffer_{dir}[i],"));
    push(out, "});");
    push(out, "");
    push(out, &format!("fn configure_route_{dir}() void {{"));
    push(out, &format!("  if (route_configured_{dir}) {{"));
    push(out, "    return;");
    push(out, "  }");
    push(out, &format!("  fabric.set_route(send_color_{dir}, .{{"));
    push(out, &format!("    .rx = .{{ {color} }},"));
    push(out, &format!("    .tx = .{{ {} }},", dir.to_uppercase()));
    push(out, "  });");
    push(out, &format!("  fabric.set_route(recv_color_{dir}, .{{"));
    push(out, &format!("    .rx = .{{ {} }},", opposite(dir).to_uppercase()));
    push(out, &format!("    .tx = .{{ {color} }},"));
    push(out, "  });");
    if config.wse2_self_transmit {
        push(out, "  // WSE2: add the self loop required by the older switch logic.");
        push(out, &format!("  fabric.add_self_route(send_color_{dir});"));
    }
    push(out, &format!("  route_configured_{dir} = true;"));
    push(out, "}");
    push(out, "");
    push(out, &format!("fn send_chunk_{dir}(offset : i16) void {{"));
    push(out, &format!("  configure_route_{dir}();"));
    push(out, "  // Asynchronously stream one chunk of the local column into the fabric.");
    push(out, "  const src = @get_dsd(mem1d_dsd, .{");
    push(out, "    .tensor_access = |i|{chunk_size} -> send_buffer_ptr[i + offset],");
    push(out, "  });");
    push(
        out,
        &format!(
            "  @fmovs(send_dsd_{dir}, src, .{{ .async = true, .activate = send_done_{dir} }});"
        ),
    );
    push(out, "}");
    push(out, "");
    push(out, &format!("task send_done_{dir}() void {{"));
    push(out, "  // Sending of one chunk completed; nothing to do until the matching");
    push(out, "  // receive completes, the coordination task accounts for both.");
    push(out, "  note_direction_step();");
    push(out, "}");
    push(out, "");
    push(out, &format!("task recv_chunk_{dir}() void {{"));
    push(
        out,
        &format!("  // One chunk from {dir} has been fully received into the staging buffer."),
    );
    push(out, &format!("  recv_count_{dir} += 1;"));
    push(out, "  user_chunk_cb(current_chunk * chunk_size);");
    push(out, "  note_direction_step();");
    push(out, "}");
    push(out, "");
    push(out, &format!("fn post_receive_{dir}() void {{"));
    push(out, &format!("  configure_route_{dir}();"));
    push(out, &format!("  @fmovs(recv_mem_dsd_{dir}, recv_dsd_{dir}, .{{ .async = true, .activate = recv_chunk_{dir} }});"));
    push(out, "}");
    push(out, "");
}

fn coordination_block(out: &mut String, config: CommsLibraryConfig) {
    push(out, "// ---------------------------------------------------------------------");
    push(out, "// Exchange coordination");
    push(out, "// ---------------------------------------------------------------------");
    push(out, "");
    push(out, "// Each chunk requires one send and one receive per active direction.");
    push(out, "// `note_direction_step` counts completions; when every direction has");
    push(out, "// finished the current chunk it either starts the next chunk or fires");
    push(out, "// the user's done callback.");
    push(out, "fn note_direction_step() void {");
    push(out, "  pending_directions -= 1;");
    push(out, "  if (pending_directions != 0) {");
    push(out, "    return;");
    push(out, "  }");
    push(out, "  current_chunk += 1;");
    push(out, "  if (current_chunk < num_chunks) {");
    push(out, "    start_chunk(current_chunk);");
    push(out, "  } else {");
    push(out, "    exchange_in_flight = false;");
    push(out, "    user_done_cb();");
    push(out, "  }");
    push(out, "}");
    push(out, "");
    push(out, "fn start_chunk(chunk : i16) void {");
    push(out, "  const offset : i16 = chunk * chunk_size;");
    push(out, "  pending_directions = 8; // 4 sends + 4 receives");
    for (dir, _, _) in DIRECTIONS {
        push(out, &format!("  post_receive_{dir}();"));
        push(out, &format!("  send_chunk_{dir}(offset);"));
    }
    if config.wse2_self_transmit {
        push(out, "  // The WSE2 self transmit does not take part in completion counting;");
        push(out, "  // it drains into the dedicated buffer within the same cycle budget.");
        push(out, "  self_transmit_pending = true;");
    }
    push(out, "}");
    push(out, "");
    push(out, "// Public entry point used by generated kernels:");
    push(out, "//   stencil_comms.communicate(&buffer, num_chunks, &chunk_cb, &done_cb)");
    push(out, "fn communicate(buffer : [*]f32, chunks : i16,");
    push(out, "               chunk_cb : fn(i16) void, done_cb : fn() void) void {");
    push(out, "  // Re-entrant calls are a programming error surfaced at runtime;");
    push(out, "  // generated code always waits for done_cb before communicating again.");
    push(out, "  exchange_in_flight = true;");
    push(out, "  send_buffer_ptr = buffer;");
    push(out, "  user_chunk_cb = chunk_cb;");
    push(out, "  user_done_cb = done_cb;");
    push(out, "  current_chunk = 0;");
    push(out, "  start_chunk(0);");
    push(out, "}");
    push(out, "");
    push(out, "// Exchange only the subset of the column actually required by the");
    push(out, "// calculation (first/last pattern cells are omitted), one of the");
    push(out, "// memory-traffic advantages over the hand-written kernel.");
    push(out, "fn communicate_interior(buffer : [*]f32, chunks : i16, interior : i16,");
    push(out, "                        chunk_cb : fn(i16) void, done_cb : fn() void) void {");
    push(out, "  send_count = interior;");
    push(out, "  communicate(buffer, chunks, chunk_cb, done_cb);");
    push(out, "}");
    push(out, "");
}

fn opposite(dir: &str) -> &'static str {
    match dir {
        "east" => "west",
        "west" => "east",
        "north" => "south",
        _ => "north",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn library_contains_all_directions() {
        let lib = stencil_comms_library();
        for dir in ["east", "west", "north", "south"] {
            assert!(lib.contains(&format!("send_chunk_{dir}")), "missing send for {dir}");
            assert!(lib.contains(&format!("recv_chunk_{dir}")), "missing recv task for {dir}");
            assert!(lib.contains(&format!("post_receive_{dir}")), "missing post for {dir}");
        }
        assert!(lib.contains("fn communicate(buffer"));
        assert!(lib.contains("fn note_direction_step"));
    }

    #[test]
    fn library_is_substantial() {
        // Table 1 of the paper counts the full generated artifact at roughly
        // 960-1000 lines; the library accounts for the bulk of that.
        let lines = stencil_comms_library().lines().filter(|l| !l.trim().is_empty()).count();
        assert!(lines > 200, "library unexpectedly small: {lines} lines");
    }

    #[test]
    fn wse2_config_adds_self_transmit() {
        let wse2 = stencil_comms_library_with(CommsLibraryConfig {
            wse2_self_transmit: true,
            ..CommsLibraryConfig::default()
        });
        assert!(wse2.contains("self_transmit_buffer"));
        assert!(wse2.contains("add_self_route"));
        let wse3 = stencil_comms_library();
        assert!(!wse3.contains("self_transmit_buffer"));
    }

    #[test]
    fn opposite_directions() {
        assert_eq!(opposite("east"), "west");
        assert_eq!(opposite("west"), "east");
        assert_eq!(opposite("north"), "south");
        assert_eq!(opposite("south"), "north");
    }
}
