//! The `csl` dialect: a re-implementation of a large subset of the CSL
//! programming language (Section 4.3 of the paper).
//!
//! Constructs present in CSL are represented one-to-one by operations in
//! this dialect — modules, functions, tasks, activations, Data Structure
//! Descriptors (DSDs) and the DSD arithmetic builtins — so that printing
//! CSL source from the IR is a direct translation, and so that the WSE
//! simulator can execute the lowered program without further lowering.

use wse_ir::{
    Attribute, BlockId, DialectRegistry, IrContext, OpBuilder, OpId, OpSpec, Type, ValueId,
};

// ----------------------------------------------------------------- modules

/// `csl.module`: a CSL translation unit (kind = "program" or "layout").
pub const MODULE: &str = "csl.module";
/// `csl.param`: a compile-time parameter of a module.
pub const PARAM: &str = "csl.param";
/// `csl.import_module`: `@import_module("<...>")`.
pub const IMPORT_MODULE: &str = "csl.import_module";

// --------------------------------------------------------- funcs and tasks

/// `csl.func`: a CSL `fn`.
pub const FUNC: &str = "csl.func";
/// `csl.task`: a CSL `task` (local, data or control).
pub const TASK: &str = "csl.task";
/// `csl.call`: a direct call to a `csl.func`.
pub const CALL: &str = "csl.call";
/// `csl.member_call`: a call to a function of an imported module.
pub const MEMBER_CALL: &str = "csl.member_call";
/// `csl.activate`: `@activate(task_id)`.
pub const ACTIVATE: &str = "csl.activate";
/// `csl.return`: return from a func or task.
pub const RETURN: &str = "csl.return";
/// `csl.if`: an `if (cond) { } else { }` statement (two regions).
pub const IF: &str = "csl.if";

// -------------------------------------------------------- state and buffers

/// `csl.var`: a module-level mutable variable.
pub const VAR: &str = "csl.var";
/// `csl.load_var`: reads a `csl.var`.
pub const LOAD_VAR: &str = "csl.load_var";
/// `csl.store_var`: writes a `csl.var`.
pub const STORE_VAR: &str = "csl.store_var";
/// `csl.zeros`: `@zeros([N]f32)` buffer allocation.
pub const ZEROS: &str = "csl.zeros";
/// `csl.constants`: `@constants([N]f32, value)` buffer allocation.
pub const CONSTANTS: &str = "csl.constants";

// ----------------------------------------------------------------- DSD ops

/// `csl.get_mem_dsd`: builds a memory DSD over (a view of) a buffer.
pub const GET_MEM_DSD: &str = "csl.get_mem_dsd";
/// `csl.fadds`: `@fadds(dest, src1, src2)` elementwise add.
pub const FADDS: &str = "csl.fadds";
/// `csl.fsubs`: `@fsubs(dest, src1, src2)` elementwise subtract.
pub const FSUBS: &str = "csl.fsubs";
/// `csl.fmuls`: `@fmuls(dest, src1, src2)` elementwise multiply.
pub const FMULS: &str = "csl.fmuls";
/// `csl.fmacs`: `@fmacs(dest, acc, src, coeff)` fused multiply-accumulate.
pub const FMACS: &str = "csl.fmacs";
/// `csl.fmovs`: `@fmovs(dest, src)` move / broadcast.
pub const FMOVS: &str = "csl.fmovs";

/// All DSD compute builtins.
pub const DSD_BUILTINS: &[&str] = &[FADDS, FSUBS, FMULS, FMACS, FMOVS];

// ------------------------------------------------------------- layout ops

/// `csl.set_rectangle`: layout call fixing the PE rectangle.
pub const SET_RECTANGLE: &str = "csl.set_rectangle";
/// `csl.set_tile_code`: layout call assigning a program to a PE.
pub const SET_TILE_CODE: &str = "csl.set_tile_code";
/// `csl.export`: makes a symbol visible to the host runtime.
pub const EXPORT: &str = "csl.export";
/// `csl.rpc`: unblocks the host command stream (memcpy RPC launch).
pub const RPC: &str = "csl.rpc";

/// The type of an imported module value.
pub fn imported_module_type() -> Type {
    Type::dialect("csl", "imported_module", vec![])
}

/// The type of a DSD value.
pub fn dsd_type() -> Type {
    Type::dialect("csl", "dsd", vec![Attribute::str("mem1d_dsd")])
}

/// Kinds of CSL tasks (Section 2.1 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TaskKind {
    /// Triggered internally via `@activate`.
    Local,
    /// Triggered by an arriving data wavelet.
    Data,
    /// Triggered by an arriving control wavelet.
    Control,
}

impl TaskKind {
    /// Attribute string used to encode the kind.
    pub fn as_str(self) -> &'static str {
        match self {
            TaskKind::Local => "local",
            TaskKind::Data => "data",
            TaskKind::Control => "control",
        }
    }

    /// Parses the attribute string form.
    pub fn parse(s: &str) -> Option<TaskKind> {
        match s {
            "local" => Some(TaskKind::Local),
            "data" => Some(TaskKind::Data),
            "control" => Some(TaskKind::Control),
            _ => None,
        }
    }
}

/// Module kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModuleKind {
    /// The per-PE program.
    Program,
    /// The layout metaprogram.
    Layout,
}

impl ModuleKind {
    /// Attribute string used to encode the kind.
    pub fn as_str(self) -> &'static str {
        match self {
            ModuleKind::Program => "program",
            ModuleKind::Layout => "layout",
        }
    }

    /// Parses the attribute string form.
    pub fn parse(s: &str) -> Option<ModuleKind> {
        match s {
            "program" => Some(ModuleKind::Program),
            "layout" => Some(ModuleKind::Layout),
            _ => None,
        }
    }
}

// ----------------------------------------------------------------- builders

/// Builds a `csl.module` and returns the op and its body block.
pub fn build_module(b: &mut OpBuilder<'_>, name: &str, kind: ModuleKind) -> (OpId, BlockId) {
    let op = b.insert(
        OpSpec::new(MODULE)
            .attr("sym_name", Attribute::str(name))
            .attr("kind", Attribute::str(kind.as_str()))
            .regions(1),
    );
    let region = b.ctx_ref().op_region(op, 0);
    let body = b.ctx().add_block(region, vec![]);
    (op, body)
}

/// Builds a `csl.param` (compile-time module parameter).
pub fn param(b: &mut OpBuilder<'_>, name: &str, default: Option<i64>, ty: Type) -> ValueId {
    let mut spec = OpSpec::new(PARAM).results([ty]).attr("name", Attribute::str(name));
    if let Some(d) = default {
        spec = spec.attr("default", Attribute::int(d));
    }
    b.insert_value(spec)
}

/// Builds a `csl.import_module` of the named CSL library.
pub fn import_module(b: &mut OpBuilder<'_>, module: &str) -> ValueId {
    b.insert_value(
        OpSpec::new(IMPORT_MODULE)
            .results([imported_module_type()])
            .attr("module", Attribute::str(module)),
    )
}

/// Builds a `csl.func` named `name` and returns the op and its body block.
pub fn build_func(b: &mut OpBuilder<'_>, name: &str, arg_types: Vec<Type>) -> (OpId, BlockId) {
    let op = b.insert(OpSpec::new(FUNC).attr("sym_name", Attribute::str(name)).regions(1));
    let region = b.ctx_ref().op_region(op, 0);
    let body = b.ctx().add_block(region, arg_types);
    (op, body)
}

/// Builds a `csl.task` named `name` of the given kind and id.
pub fn build_task(
    b: &mut OpBuilder<'_>,
    name: &str,
    kind: TaskKind,
    id: i64,
    arg_types: Vec<Type>,
) -> (OpId, BlockId) {
    let op = b.insert(
        OpSpec::new(TASK)
            .attr("sym_name", Attribute::str(name))
            .attr("kind", Attribute::str(kind.as_str()))
            .attr("id", Attribute::int(id))
            .regions(1),
    );
    let region = b.ctx_ref().op_region(op, 0);
    let body = b.ctx().add_block(region, arg_types);
    (op, body)
}

/// Builds a `csl.call` to the function named `callee`.
pub fn call(b: &mut OpBuilder<'_>, callee: &str, operands: Vec<ValueId>) -> OpId {
    b.insert(
        OpSpec::new(CALL)
            .attr("callee", Attribute::SymbolRef(callee.to_string()))
            .operands(operands),
    )
}

/// Builds a `csl.member_call` on an imported module: `callee.field(args)`.
/// Callback symbols (used by the communication library) are passed through
/// the `callbacks` attribute.
pub fn member_call(
    b: &mut OpBuilder<'_>,
    field: &str,
    import: ValueId,
    operands: Vec<ValueId>,
    callbacks: &[&str],
    results: Vec<Type>,
) -> OpId {
    let mut all_operands = vec![import];
    all_operands.extend(operands);
    b.insert(
        OpSpec::new(MEMBER_CALL)
            .attr("field", Attribute::str(field))
            .attr(
                "callbacks",
                Attribute::Array(
                    callbacks.iter().map(|c| Attribute::SymbolRef((*c).to_string())).collect(),
                ),
            )
            .operands(all_operands)
            .results(results),
    )
}

/// Builds a `csl.activate` of the task named `task`.
pub fn activate(b: &mut OpBuilder<'_>, task: &str, id: i64) -> OpId {
    b.insert(
        OpSpec::new(ACTIVATE)
            .attr("task", Attribute::SymbolRef(task.to_string()))
            .attr("id", Attribute::int(id)),
    )
}

/// Appends a `csl.return` to a block.
pub fn build_return(ctx: &mut IrContext, block: BlockId, values: Vec<ValueId>) -> OpId {
    let mut b = OpBuilder::at_end(ctx, block);
    b.insert(OpSpec::new(RETURN).operands(values))
}

/// Builds a `csl.if` with a then-block and an else-block.
pub fn build_if(b: &mut OpBuilder<'_>, condition: ValueId) -> (OpId, BlockId, BlockId) {
    let op = b.insert(OpSpec::new(IF).operands([condition]).regions(2));
    let then_region = b.ctx_ref().op_region(op, 0);
    let then_block = b.ctx().add_block(then_region, vec![]);
    let else_region = b.ctx_ref().op_region(op, 1);
    let else_block = b.ctx().add_block(else_region, vec![]);
    (op, then_block, else_block)
}

/// Builds a module-level mutable `csl.var`.
pub fn var(b: &mut OpBuilder<'_>, name: &str, ty: Type, init: i64) -> OpId {
    b.insert(
        OpSpec::new(VAR)
            .attr("sym_name", Attribute::str(name))
            .attr("type", Attribute::Type(ty))
            .attr("init", Attribute::int(init)),
    )
}

/// Builds a `csl.load_var` of the variable named `name`.
pub fn load_var(b: &mut OpBuilder<'_>, name: &str, ty: Type) -> ValueId {
    b.insert_value(
        OpSpec::new(LOAD_VAR).results([ty]).attr("var", Attribute::SymbolRef(name.to_string())),
    )
}

/// Builds a `csl.store_var` of `value` into the variable named `name`.
pub fn store_var(b: &mut OpBuilder<'_>, name: &str, value: ValueId) -> OpId {
    b.insert(
        OpSpec::new(STORE_VAR)
            .operands([value])
            .attr("var", Attribute::SymbolRef(name.to_string())),
    )
}

/// Builds a `csl.zeros` buffer of the given memref type.
pub fn zeros(b: &mut OpBuilder<'_>, name: &str, ty: Type) -> ValueId {
    b.insert_value(OpSpec::new(ZEROS).results([ty]).attr("sym_name", Attribute::str(name)))
}

/// Builds a `csl.constants` buffer filled with `value`.
pub fn constants(b: &mut OpBuilder<'_>, name: &str, ty: Type, value: f32) -> ValueId {
    b.insert_value(
        OpSpec::new(CONSTANTS)
            .results([ty])
            .attr("sym_name", Attribute::str(name))
            .attr("value", Attribute::f32(value)),
    )
}

/// Builds a `csl.get_mem_dsd` view over `buffer` (`offset`, `length`).
pub fn get_mem_dsd(b: &mut OpBuilder<'_>, buffer: ValueId, offset: i64, length: i64) -> ValueId {
    b.insert_value(
        OpSpec::new(GET_MEM_DSD)
            .operands([buffer])
            .results([dsd_type()])
            .attr("offset", Attribute::int(offset))
            .attr("length", Attribute::int(length)),
    )
}

/// Builds a `csl.get_mem_dsd` whose base offset is computed at runtime
/// (`static offset + dynamic offset`), used for chunk-indexed accumulator
/// views inside receive-chunk tasks.
pub fn get_mem_dsd_dynamic(
    b: &mut OpBuilder<'_>,
    buffer: ValueId,
    dynamic_offset: ValueId,
    offset: i64,
    length: i64,
) -> ValueId {
    b.insert_value(
        OpSpec::new(GET_MEM_DSD)
            .operands([buffer, dynamic_offset])
            .results([dsd_type()])
            .attr("offset", Attribute::int(offset))
            .attr("length", Attribute::int(length)),
    )
}

/// Builds a DSD builtin with a destination and sources (`@fadds`, ...).
pub fn dsd_builtin(b: &mut OpBuilder<'_>, name: &str, operands: Vec<ValueId>) -> OpId {
    b.insert(OpSpec::new(name).operands(operands))
}

/// Builds a layout `csl.set_rectangle`.
pub fn set_rectangle(b: &mut OpBuilder<'_>, width: i64, height: i64) -> OpId {
    b.insert(
        OpSpec::new(SET_RECTANGLE)
            .attr("width", Attribute::int(width))
            .attr("height", Attribute::int(height)),
    )
}

/// Builds a layout `csl.set_tile_code` assigning `file` with params.
pub fn set_tile_code(b: &mut OpBuilder<'_>, file: &str, params: Vec<(String, Attribute)>) -> OpId {
    let mut dict = std::collections::BTreeMap::new();
    for (k, v) in params {
        dict.insert(k, v);
    }
    b.insert(
        OpSpec::new(SET_TILE_CODE)
            .attr("file", Attribute::str(file))
            .attr("params", Attribute::Dict(dict)),
    )
}

/// Builds a `csl.export` of a symbol (host-visible buffer or function).
pub fn export(b: &mut OpBuilder<'_>, symbol: &str, kind: &str) -> OpId {
    b.insert(
        OpSpec::new(EXPORT)
            .attr("symbol", Attribute::SymbolRef(symbol.to_string()))
            .attr("kind", Attribute::str(kind)),
    )
}

// ---------------------------------------------------------------- accessors

/// Symbol name of a func/task/module/var.
pub fn symbol_name(ctx: &IrContext, op: OpId) -> Option<&str> {
    ctx.attr_str(op, "sym_name")
}

/// Kind of a `csl.task`.
pub fn task_kind(ctx: &IrContext, op: OpId) -> Option<TaskKind> {
    ctx.attr_str(op, "kind").and_then(TaskKind::parse)
}

/// Kind of a `csl.module`.
pub fn module_kind(ctx: &IrContext, op: OpId) -> Option<ModuleKind> {
    ctx.attr_str(op, "kind").and_then(ModuleKind::parse)
}

/// Body block of a func/task/module.
pub fn body_block(ctx: &IrContext, op: OpId) -> Option<BlockId> {
    ctx.entry_block(ctx.op_region(op, 0))
}

/// Callee of a `csl.call` or `csl.activate` (the `task` attribute).
pub fn callee(ctx: &IrContext, op: OpId) -> Option<&str> {
    ctx.attr_str(op, "callee").or_else(|| ctx.attr_str(op, "task"))
}

/// Callback symbols of a `csl.member_call`.
pub fn callbacks(ctx: &IrContext, op: OpId) -> Vec<String> {
    ctx.attr(op, "callbacks")
        .and_then(Attribute::as_array)
        .map(|a| a.iter().filter_map(|x| x.as_str().map(str::to_string)).collect())
        .unwrap_or_default()
}

/// Finds a `csl.func` or `csl.task` by symbol name under `root`.
pub fn find_callable(ctx: &IrContext, root: OpId, name: &str) -> Option<OpId> {
    ctx.walk(root)
        .into_iter()
        .filter(|&o| ctx.op_name(o) == FUNC || ctx.op_name(o) == TASK)
        .find(|&o| symbol_name(ctx, o) == Some(name))
}

// ---------------------------------------------------------------- verifiers

fn verify_symbol_op(ctx: &IrContext, op: OpId) -> Result<(), String> {
    if symbol_name(ctx, op).is_none() {
        return Err(format!("{} requires a sym_name attribute", ctx.op_name(op)));
    }
    Ok(())
}

fn verify_task(ctx: &IrContext, op: OpId) -> Result<(), String> {
    verify_symbol_op(ctx, op)?;
    let Some(kind) = task_kind(ctx, op) else {
        return Err("csl.task requires a kind attribute (local/data/control)".into());
    };
    let id = ctx.attr_int(op, "id").ok_or("csl.task requires an id attribute")?;
    // The WSE exposes 24 programmer-visible colors / task ids per PE.
    if !(0..=23).contains(&id) {
        return Err(format!("task id {id} is outside the architectural range 0..=23"));
    }
    if kind == TaskKind::Data && body_block(ctx, op).map(|b| ctx.block_args(b).len()) == Some(0) {
        return Err("data tasks receive a wavelet payload and need at least one argument".into());
    }
    Ok(())
}

fn verify_module(ctx: &IrContext, op: OpId) -> Result<(), String> {
    verify_symbol_op(ctx, op)?;
    if module_kind(ctx, op).is_none() {
        return Err("csl.module requires a kind attribute (program/layout)".into());
    }
    Ok(())
}

fn verify_dsd_builtin(ctx: &IrContext, op: OpId) -> Result<(), String> {
    let expected = match ctx.op_name(op) {
        FMACS => 4,
        FMOVS => 2,
        _ => 3,
    };
    if ctx.operands(op).len() != expected {
        return Err(format!(
            "{} requires {expected} operands, found {}",
            ctx.op_name(op),
            ctx.operands(op).len()
        ));
    }
    let dest_ty = ctx.value_type(ctx.operand(op, 0));
    if dest_ty != &dsd_type() && !dest_ty.is_memref() {
        return Err(format!(
            "destination of {} must be a DSD or memref, got {dest_ty}",
            ctx.op_name(op)
        ));
    }
    Ok(())
}

fn verify_get_mem_dsd(ctx: &IrContext, op: OpId) -> Result<(), String> {
    if ctx.operands(op).is_empty() || ctx.operands(op).len() > 2 {
        return Err("csl.get_mem_dsd takes a buffer and an optional dynamic offset".into());
    }
    let buf_ty = ctx.value_type(ctx.operand(op, 0));
    if !buf_ty.is_memref() {
        return Err(format!("csl.get_mem_dsd operand must be a memref, got {buf_ty}"));
    }
    let offset = ctx.attr_int(op, "offset").unwrap_or(0);
    let length = ctx.attr_int(op, "length").unwrap_or(0);
    if length <= 0 {
        return Err("csl.get_mem_dsd requires a positive length".into());
    }
    // Static views are bounds-checked; dynamic views are checked by the
    // simulator at runtime.
    if ctx.operands(op).len() == 1 {
        if let Some(&dim) = buf_ty.shape().and_then(|s| s.last()) {
            if dim >= 0 && offset + length > dim {
                return Err(format!(
                    "DSD view [{offset}, {}) exceeds the buffer extent {dim}",
                    offset + length
                ));
            }
        }
    }
    Ok(())
}

fn verify_if(ctx: &IrContext, op: OpId) -> Result<(), String> {
    if ctx.operands(op).len() != 1 {
        return Err("csl.if requires exactly one condition operand".into());
    }
    if ctx.op_regions(op).len() != 2 {
        return Err("csl.if requires a then and an else region".into());
    }
    Ok(())
}

fn verify_member_call(ctx: &IrContext, op: OpId) -> Result<(), String> {
    if ctx.attr_str(op, "field").is_none() {
        return Err("csl.member_call requires a field attribute".into());
    }
    if ctx.operands(op).is_empty() {
        return Err("csl.member_call requires the imported module as its first operand".into());
    }
    Ok(())
}

/// Registers the dialect's verifiers.
pub fn register(registry: &mut DialectRegistry) {
    registry.register_dialect("csl");
    registry.register_op_verifier(MODULE, verify_module);
    registry.register_op_verifier(FUNC, verify_symbol_op);
    registry.register_op_verifier(TASK, verify_task);
    registry.register_op_verifier(VAR, verify_symbol_op);
    registry.register_op_verifier(ZEROS, verify_symbol_op);
    registry.register_op_verifier(CONSTANTS, verify_symbol_op);
    registry.register_op_verifier(GET_MEM_DSD, verify_get_mem_dsd);
    registry.register_op_verifier(IF, verify_if);
    registry.register_op_verifier(MEMBER_CALL, verify_member_call);
    for name in DSD_BUILTINS {
        registry.register_op_verifier(*name, verify_dsd_builtin);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wse_dialects::builtin;
    use wse_ir::verify;

    fn registry() -> DialectRegistry {
        let mut r = wse_dialects::register_all();
        register(&mut r);
        r
    }

    #[test]
    fn task_and_func_construction() {
        let mut ctx = IrContext::new();
        let (module, body) = builtin::module(&mut ctx);
        let mut b = OpBuilder::at_end(&mut ctx, body);
        let (csl_mod, mod_body) = build_module(&mut b, "pe_program", ModuleKind::Program);
        let mut mb = OpBuilder::at_end(&mut ctx, mod_body);
        var(&mut mb, "step", Type::int(16), 0);
        let (func_op, func_body) = build_func(&mut mb, "f_main", vec![]);
        let (task_op, task_body) = build_task(&mut mb, "for_cond0", TaskKind::Local, 3, vec![]);
        let mut fb = OpBuilder::at_end(&mut ctx, func_body);
        activate(&mut fb, "for_cond0", 3);
        build_return(&mut ctx, func_body, vec![]);
        build_return(&mut ctx, task_body, vec![]);

        assert_eq!(module_kind(&ctx, csl_mod), Some(ModuleKind::Program));
        assert_eq!(symbol_name(&ctx, func_op), Some("f_main"));
        assert_eq!(task_kind(&ctx, task_op), Some(TaskKind::Local));
        assert_eq!(find_callable(&ctx, module, "for_cond0"), Some(task_op));
        assert_eq!(find_callable(&ctx, module, "f_main"), Some(func_op));
        assert!(verify(&ctx, module, &registry()).is_empty());
    }

    #[test]
    fn dsd_builtins_and_buffers() {
        let mut ctx = IrContext::new();
        let (module, body) = builtin::module(&mut ctx);
        let buf_ty = Type::memref(vec![512], Type::f32());
        let mut b = OpBuilder::at_end(&mut ctx, body);
        let a = zeros(&mut b, "a", buf_ty.clone());
        let c = constants(&mut b, "coeff", buf_ty.clone(), 0.12345);
        let da = get_mem_dsd(&mut b, a, 1, 510);
        let dc = get_mem_dsd(&mut b, c, 0, 510);
        dsd_builtin(&mut b, FADDS, vec![da, da, dc]);
        dsd_builtin(&mut b, FMOVS, vec![da, dc]);
        let coeff = wse_dialects::arith::constant_f32(&mut b, 0.5, Type::f32());
        dsd_builtin(&mut b, FMACS, vec![da, da, dc, coeff]);
        assert!(verify(&ctx, module, &registry()).is_empty());
    }

    #[test]
    fn oversized_dsd_rejected() {
        let mut ctx = IrContext::new();
        let (module, body) = builtin::module(&mut ctx);
        let buf_ty = Type::memref(vec![16], Type::f32());
        let mut b = OpBuilder::at_end(&mut ctx, body);
        let a = zeros(&mut b, "a", buf_ty);
        get_mem_dsd(&mut b, a, 10, 10);
        let errors = verify(&ctx, module, &registry());
        assert!(errors.iter().any(|e| e.message.contains("exceeds the buffer extent")));
    }

    #[test]
    fn task_id_range_checked() {
        let mut ctx = IrContext::new();
        let (module, body) = builtin::module(&mut ctx);
        let mut b = OpBuilder::at_end(&mut ctx, body);
        let (_t, tb) = build_task(&mut b, "too_big", TaskKind::Local, 31, vec![]);
        build_return(&mut ctx, tb, vec![]);
        let errors = verify(&ctx, module, &registry());
        assert!(errors.iter().any(|e| e.message.contains("architectural range")));
    }

    #[test]
    fn data_task_needs_payload_argument() {
        let mut ctx = IrContext::new();
        let (module, body) = builtin::module(&mut ctx);
        let mut b = OpBuilder::at_end(&mut ctx, body);
        let (_t, tb) = build_task(&mut b, "recv", TaskKind::Data, 1, vec![]);
        build_return(&mut ctx, tb, vec![]);
        let errors = verify(&ctx, module, &registry());
        assert!(errors.iter().any(|e| e.message.contains("wavelet payload")));
    }

    #[test]
    fn kind_string_roundtrip() {
        for kind in [TaskKind::Local, TaskKind::Data, TaskKind::Control] {
            assert_eq!(TaskKind::parse(kind.as_str()), Some(kind));
        }
        assert_eq!(TaskKind::parse("bogus"), None);
        for kind in [ModuleKind::Program, ModuleKind::Layout] {
            assert_eq!(ModuleKind::parse(kind.as_str()), Some(kind));
        }
        assert_eq!(ModuleKind::parse("bogus"), None);
    }

    #[test]
    fn member_call_callbacks_roundtrip() {
        let mut ctx = IrContext::new();
        let (_module, body) = builtin::module(&mut ctx);
        let mut b = OpBuilder::at_end(&mut ctx, body);
        let comms = import_module(&mut b, "stencil_comms.csl");
        let mc = member_call(
            &mut b,
            "communicate",
            comms,
            vec![],
            &["receive_chunk_cb0", "done_exchange_cb0"],
            vec![],
        );
        assert_eq!(
            callbacks(&ctx, mc),
            vec!["receive_chunk_cb0".to_string(), "done_exchange_cb0".to_string()]
        );
        assert_eq!(ctx.attr_str(mc, "field"), Some("communicate"));
    }
}
