//! # wse-csl — CSL-targeting dialects and code generation
//!
//! This crate contains the three WSE-specific dialects introduced by the
//! paper and the final code-generation stage:
//!
//! * [`csl_stencil`] — chunked communicate-and-compute stencil operations
//!   (Section 4.1);
//! * [`csl_wrapper`] — packaging of the layout metaprogram and the PE
//!   program for CSL's staged compilation (Section 4.2);
//! * [`csl`] — a re-implementation of a large subset of the CSL language
//!   from which source text is printed (Section 4.3);
//! * [`printer`] — the CSL source printer;
//! * [`runtime_lib`] — the chunked halo-exchange runtime library shipped
//!   with every generated kernel (Section 5.6).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod csl;
pub mod csl_stencil;
pub mod csl_wrapper;
pub mod printer;
pub mod runtime_lib;

pub use printer::{print_csl, CslSourceFile, CslSources};
pub use runtime_lib::{stencil_comms_library, stencil_comms_library_with, CommsLibraryConfig};

use wse_ir::DialectRegistry;

/// Registers the three CSL dialects into an existing registry.
pub fn register_into(registry: &mut DialectRegistry) {
    csl_stencil::register(registry);
    csl_wrapper::register(registry);
    csl::register(registry);
}

/// Builds a registry containing every dialect used by the full pipeline
/// (core dialects plus the CSL dialects).
pub fn register_all() -> DialectRegistry {
    let mut registry = wse_dialects::register_all();
    register_into(&mut registry);
    registry
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_contains_csl_dialects() {
        let registry = register_all();
        for dialect in ["csl", "csl_stencil", "csl_wrapper", "stencil", "arith"] {
            assert!(registry.has_dialect(dialect), "missing {dialect}");
        }
    }
}
