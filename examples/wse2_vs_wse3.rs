//! Compares WSE2 and WSE3 code generation and performance across all five
//! paper benchmarks (Figure 4 of the paper).
//!
//! Run with `cargo run --example wse2_vs_wse3`.

use wse_stencil::benchmarks::{Benchmark, ProblemSize};
use wse_stencil::{Compiler, WseTarget};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("{:<18} {:>14} {:>14} {:>10}", "benchmark", "WSE2 GPts/s", "WSE3 GPts/s", "ratio");
    for benchmark in Benchmark::ALL {
        let program = benchmark.program(ProblemSize::Large);
        let wse2 = Compiler::new().target(WseTarget::Wse2).num_chunks(2).compile(&program)?;
        let wse3 = Compiler::new().target(WseTarget::Wse3).num_chunks(2).compile(&program)?;
        let (e2, e3) = (wse2.estimate(), wse3.estimate());
        println!(
            "{:<18} {:>14.0} {:>14.0} {:>9.2}x",
            benchmark.name(),
            e2.gpts_per_sec,
            e3.gpts_per_sec,
            e3.gpts_per_sec / e2.gpts_per_sec
        );
    }
    // The same source compiles for both generations; only the runtime
    // library differs (WSE2 self-transmit workaround).
    let program = Benchmark::Jacobian.tiny_program();
    let wse2 = Compiler::new().target(WseTarget::Wse2).compile(&program)?;
    let wse3 = Compiler::new().target(WseTarget::Wse3).compile(&program)?;
    let lib = |a: &wse_stencil::CslArtifact| {
        a.sources().file("stencil_comms.csl").unwrap().content.contains("self_transmit")
    };
    println!("\nWSE2 runtime library uses self-transmit workaround: {}", lib(&wse2));
    println!("WSE3 runtime library uses self-transmit workaround: {}", lib(&wse3));
    Ok(())
}
