//! The PSyclone UVKBE benchmark: four fields, two consecutive applies, and
//! the stencil-inlining optimization that fuses them.
//!
//! Run with `cargo run --example uvkbe_psyclone`.

use wse_stencil::benchmarks::Benchmark;
use wse_stencil::Compiler;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = Benchmark::Uvkbe.tiny_program();
    println!("PSyclone algorithm layer:\n{}", program.source);
    println!("fields: {:?}", program.fields);
    println!("communicated fields: {:?}", program.communicated_fields());

    let fused = Compiler::new().compile(&program)?;
    let unfused = Compiler::new().inlining(false).compile(&program)?;
    println!("\nwith stencil-inlining   : passes = {}", fused.pass_names().len());
    println!("without stencil-inlining: passes = {}", unfused.pass_names().len());
    println!("validation (inlined)    : {:.2e}", fused.validate_against_reference()?);
    println!("validation (not inlined): {:.2e}", unfused.validate_against_reference()?);

    let report = fused.loc_report();
    println!(
        "\nLines of code — DSL: {}, generated kernel: {}, entire artifact: {}",
        report.dsl, report.csl_kernel, report.csl_entire
    );
    Ok(())
}
