//! The 25-point seismic kernel (Jacquelin et al.): generated code vs the
//! hand-written CSL kernel on WSE2 and WSE3 (Figure 5 of the paper).
//!
//! Run with `cargo run --example seismic_25pt`.

use wse_sim::baselines::handwritten_seismic_estimate;
use wse_sim::WseGeneration;
use wse_stencil::benchmarks::{Benchmark, ProblemSize};
use wse_stencil::{Compiler, WseTarget};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "size        hand-written WSE2   ours WSE2   ours WSE3   speedup(WSE2)  speedup(WSE3)"
    );
    for size in [ProblemSize::Small, ProblemSize::Medium, ProblemSize::Large] {
        let program = Benchmark::Seismic25.program(size);
        let handwritten = handwritten_seismic_estimate(
            &WseGeneration::Wse2.machine(),
            (program.grid.x, program.grid.y, program.grid.z),
            program.timesteps,
            program.flops_per_point(),
        );
        let ours_wse2 = Compiler::new().target(WseTarget::Wse2).compile(&program)?.estimate();
        let ours_wse3 = Compiler::new().target(WseTarget::Wse3).compile(&program)?.estimate();
        println!(
            "{:<10}  {:>16.0}  {:>10.0}  {:>10.0}  {:>12.3}  {:>12.3}",
            size.label(),
            handwritten.gpts_per_sec,
            ours_wse2.gpts_per_sec,
            ours_wse3.gpts_per_sec,
            ours_wse2.gpts_per_sec / handwritten.gpts_per_sec,
            ours_wse3.gpts_per_sec / handwritten.gpts_per_sec,
        );
    }

    // Functional check on a tiny grid: the generated actor program computes
    // exactly what the mathematical stencil describes.
    let tiny = Benchmark::Seismic25.tiny_program();
    let artifact = Compiler::new().num_chunks(2).compile(&tiny)?;
    println!("\ntiny-grid validation error: {:.2e}", artifact.validate_against_reference()?);
    println!("@fmacs builtins in generated code: {}", artifact.fmac_count());
    Ok(())
}
