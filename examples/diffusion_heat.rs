//! Heat diffusion written against the Devito-like symbolic front-end,
//! compiled to CSL and validated on the simulator.
//!
//! Run with `cargo run --example diffusion_heat`.

use wse_stencil::devito::{Eq, Function, Grid, Operator};
use wse_stencil::Compiler;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The scientist's view: a grid, a field and a symbolic update equation.
    let grid = Grid::new(8, 8, 16);
    let u = Function::new("u", 4);
    let update = u.center() + u.laplace().scale(0.05);
    let program = Operator::new(grid, vec![u.clone()])
        .equation(Eq::new(&u, update))
        .timesteps(3)
        .build("heat")?;
    println!("Devito-style source:\n{}", program.source);
    println!("stencil: {}-point, radius {}", program.max_points(), program.xy_radius());

    let artifact = Compiler::new().num_chunks(2).compile(&program)?;
    println!("generated kernel: {} lines of CSL", artifact.loc_report().csl_kernel);
    println!("per-PE memory: {} bytes (48 kB budget)", artifact.bytes_per_pe());
    println!(
        "validation error vs reference executor: {:.2e}",
        artifact.validate_against_reference()?
    );

    let estimate = artifact.estimate();
    println!("estimated throughput on this tiny grid: {:.2} GPts/s", estimate.gpts_per_sec);
    Ok(())
}
