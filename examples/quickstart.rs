//! Quickstart: compile a Fortran stencil for the WSE, look at the generated
//! CSL, validate it against the reference executor and estimate full-wafer
//! performance.
//!
//! Run with `cargo run --example quickstart`.

use wse_stencil::{benchmarks::Benchmark, Compiler, WseTarget};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small instance of the Flang Jacobian benchmark (Listing 1 of the
    // paper): the Fortran the scientist wrote.
    let program = Benchmark::Jacobian.tiny_program();
    println!("=== DSL input ({} lines) ===\n{}", program.source_loc(), program.source);

    // Compile it for the WSE3 with two communication chunks.
    let artifact = Compiler::new().target(WseTarget::Wse3).num_chunks(2).compile(&program)?;
    println!("Passes run: {}", artifact.pass_names().join(", "));

    // The generated CSL program (excerpt).
    let kernel = &artifact.sources().file("pe_program.csl").unwrap().content;
    println!("\n=== generated pe_program.csl (first 40 lines) ===");
    for line in kernel.lines().take(40) {
        println!("{line}");
    }
    let report = artifact.loc_report();
    println!(
        "\nLines of code: DSL {} | CSL kernel {} | CSL entire {}",
        report.dsl, report.csl_kernel, report.csl_entire
    );

    // Functional validation on a simulated PE grid.
    let deviation = artifact.validate_against_reference()?;
    println!("max |simulated - reference| = {deviation:.2e}");

    // Full-wafer performance estimate at the paper's large problem size.
    let large = Compiler::new()
        .num_chunks(2)
        .compile(&Benchmark::Jacobian.program(wse_stencil::benchmarks::ProblemSize::Large))?;
    let estimate = large.estimate();
    println!(
        "Large problem estimate: {:.0} GPts/s, {:.0} TFLOP/s, {:.0}% of peak, {} tasks/timestep",
        estimate.gpts_per_sec,
        estimate.tflops,
        estimate.fraction_of_peak * 100.0,
        estimate.tasks_per_timestep
    );
    Ok(())
}
