//! Umbrella crate for the wse-stencil reproduction workspace.
//!
//! Re-exports the public API crate so examples and integration tests can
//! use a single dependency; see [`wse_stencil`] for the full documentation.

pub use wse_stencil::*;
